//! The part-wise half of the [`ShortcutSession`] operation surface:
//! method-call sugar over [`PartwiseOp`] for aggregation, gossip, and
//! unicast routing.
//!
//! [`PartwiseOp`]: lcs_core::session::PartwiseOp

use crate::{
    AggregateOp, GossipOp, GossipOutcome, IdempotentOp, PartwiseOutcome, UnicastOp, UnicastOutcome,
};
use lcs_congest::protocols::AggOp;
use lcs_core::session::{OpReport, SessionError, ShortcutSession};
use lcs_graph::{NodeId, PartId};

/// Part-wise communication primitives served by a [`ShortcutSession`].
///
/// Implemented for [`ShortcutSession`]; bring the trait into scope (e.g.
/// via the umbrella crate's `facade` module or prelude) and call the
/// methods directly:
///
/// ```
/// use lcs_congest::protocols::AggOp;
/// use lcs_core::session::Session;
/// use lcs_graph::gen;
/// use lcs_partwise::SessionPartwiseOps;
///
/// let g = gen::grid(6, 6);
/// let mut session = Session::on(&g)
///     .partition(gen::rows_of_grid(6, 6))
///     .build()?;
/// let values: Vec<u64> = (0..36).collect();
/// let report = session.aggregate(&values, AggOp::Max);
/// assert_eq!(report.result.results[0], Some(5));
/// // The second call reuses the cached shortcut.
/// let again = session.aggregate(&values, AggOp::Sum);
/// assert!(again.result.all_members_informed);
/// assert_eq!(session.cache_stats().full.builds, 1);
/// # Ok::<(), lcs_core::PartitionError>(())
/// ```
pub trait SessionPartwiseOps {
    /// Leader-based part-wise aggregation over the cached shortcut
    /// ([`solve_partwise`](crate::solve_partwise) semantics).
    fn aggregate(&mut self, values: &[u64], op: AggOp) -> OpReport<PartwiseOutcome>;

    /// Aggregation with explicit per-part leaders.
    fn aggregate_with_leaders(
        &mut self,
        values: &[u64],
        op: AggOp,
        leaders: &[NodeId],
    ) -> OpReport<PartwiseOutcome>;

    /// Leaderless idempotent aggregation by flooding
    /// ([`gossip_aggregate`](crate::gossip_aggregate) semantics).
    fn gossip(&mut self, values: &[u64], op: IdempotentOp) -> OpReport<GossipOutcome>;

    /// Multi-unicast routing along the cached tree
    /// ([`route_multiple_unicasts`](crate::route_multiple_unicasts)
    /// semantics).
    fn unicast(&mut self, demands: &[(NodeId, NodeId)]) -> OpReport<UnicastOutcome>;

    /// [`aggregate`](Self::aggregate) with arguments validated up front: a
    /// missing partition or a value vector whose length differs from the
    /// node count comes back as a [`SessionError`] instead of a panic —
    /// the entry point a serving process maps to structured 4xx responses.
    fn try_aggregate(
        &mut self,
        values: &[u64],
        op: AggOp,
    ) -> Result<OpReport<PartwiseOutcome>, SessionError>;

    /// [`aggregate_with_leaders`](Self::aggregate_with_leaders) with
    /// arguments validated up front (partition presence, value count,
    /// leader count, leader range and membership).
    fn try_aggregate_with_leaders(
        &mut self,
        values: &[u64],
        op: AggOp,
        leaders: &[NodeId],
    ) -> Result<OpReport<PartwiseOutcome>, SessionError>;

    /// [`gossip`](Self::gossip) with arguments validated up front.
    fn try_gossip(
        &mut self,
        values: &[u64],
        op: IdempotentOp,
    ) -> Result<OpReport<GossipOutcome>, SessionError>;

    /// [`unicast`](Self::unicast) with demands validated up front (node
    /// range, no self-loops).
    fn try_unicast(
        &mut self,
        demands: &[(NodeId, NodeId)],
    ) -> Result<OpReport<UnicastOutcome>, SessionError>;
}

/// Shared validation of aggregation/gossip inputs: the session must carry
/// a partition and `values` must hold one entry per node.
fn check_values(s: &ShortcutSession<'_>, values: &[u64]) -> Result<(), SessionError> {
    s.try_partition()?;
    if values.len() != s.graph().num_nodes() {
        return Err(SessionError::ValueCountMismatch {
            got: values.len(),
            expected: s.graph().num_nodes(),
        });
    }
    Ok(())
}

impl SessionPartwiseOps for ShortcutSession<'_> {
    fn aggregate(&mut self, values: &[u64], op: AggOp) -> OpReport<PartwiseOutcome> {
        self.run(AggregateOp {
            values,
            op,
            leaders: None,
        })
    }

    fn aggregate_with_leaders(
        &mut self,
        values: &[u64],
        op: AggOp,
        leaders: &[NodeId],
    ) -> OpReport<PartwiseOutcome> {
        self.run(AggregateOp {
            values,
            op,
            leaders: Some(leaders),
        })
    }

    fn gossip(&mut self, values: &[u64], op: IdempotentOp) -> OpReport<GossipOutcome> {
        self.run(GossipOp { values, op })
    }

    fn unicast(&mut self, demands: &[(NodeId, NodeId)]) -> OpReport<UnicastOutcome> {
        self.run(UnicastOp { demands })
    }

    fn try_aggregate(
        &mut self,
        values: &[u64],
        op: AggOp,
    ) -> Result<OpReport<PartwiseOutcome>, SessionError> {
        check_values(self, values)?;
        Ok(self.aggregate(values, op))
    }

    fn try_aggregate_with_leaders(
        &mut self,
        values: &[u64],
        op: AggOp,
        leaders: &[NodeId],
    ) -> Result<OpReport<PartwiseOutcome>, SessionError> {
        check_values(self, values)?;
        let partition = self.try_partition()?;
        if leaders.len() != partition.num_parts() {
            return Err(SessionError::LeaderCountMismatch {
                got: leaders.len(),
                expected: partition.num_parts(),
            });
        }
        for (i, &l) in leaders.iter().enumerate() {
            if l.index() >= self.graph().num_nodes() {
                return Err(SessionError::NodeOutOfRange {
                    node: l,
                    num_nodes: self.graph().num_nodes(),
                });
            }
            if partition.part_of(l) != Some(PartId(i as u32)) {
                return Err(SessionError::LeaderNotInPart { leader: l, part: i });
            }
        }
        Ok(self.aggregate_with_leaders(values, op, leaders))
    }

    fn try_gossip(
        &mut self,
        values: &[u64],
        op: IdempotentOp,
    ) -> Result<OpReport<GossipOutcome>, SessionError> {
        check_values(self, values)?;
        Ok(self.gossip(values, op))
    }

    fn try_unicast(
        &mut self,
        demands: &[(NodeId, NodeId)],
    ) -> Result<OpReport<UnicastOutcome>, SessionError> {
        let n = self.graph().num_nodes();
        for (i, &(s, t)) in demands.iter().enumerate() {
            for node in [s, t] {
                if node.index() >= n {
                    return Err(SessionError::NodeOutOfRange { node, num_nodes: n });
                }
            }
            if s == t {
                return Err(SessionError::UnicastSelfLoop { packet: i });
            }
        }
        Ok(self.unicast(demands))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::session::Session;
    use lcs_graph::gen;

    #[test]
    fn try_aggregate_validates_inputs() {
        let g = gen::grid(4, 4);
        let mut s = Session::on(&g)
            .partition(gen::rows_of_grid(4, 4))
            .build()
            .unwrap();
        assert_eq!(
            s.try_aggregate(&[1, 2], AggOp::Sum).unwrap_err(),
            SessionError::ValueCountMismatch {
                got: 2,
                expected: 16
            }
        );
        let values: Vec<u64> = (0..16).collect();
        let ok = s.try_aggregate(&values, AggOp::Max).expect("valid values");
        assert_eq!(ok.result.results[0], Some(3));

        // No partition: typed error instead of the legacy panic.
        let mut bare = Session::on(&g).build().unwrap();
        assert_eq!(
            bare.try_aggregate(&values, AggOp::Sum).unwrap_err(),
            SessionError::NoPartition
        );
        assert_eq!(
            bare.try_gossip(&values, IdempotentOp::Min).unwrap_err(),
            SessionError::NoPartition
        );
    }

    #[test]
    fn try_aggregate_with_leaders_validates_leaders() {
        let g = gen::grid(4, 4);
        let mut s = Session::on(&g)
            .partition(gen::rows_of_grid(4, 4))
            .build()
            .unwrap();
        let values: Vec<u64> = (0..16).collect();
        assert_eq!(
            s.try_aggregate_with_leaders(&values, AggOp::Sum, &[NodeId(0)])
                .unwrap_err(),
            SessionError::LeaderCountMismatch {
                got: 1,
                expected: 4
            }
        );
        // Node 0 lives in part 0, not part 1.
        let bad = [NodeId(0), NodeId(0), NodeId(8), NodeId(12)];
        assert_eq!(
            s.try_aggregate_with_leaders(&values, AggOp::Sum, &bad)
                .unwrap_err(),
            SessionError::LeaderNotInPart {
                leader: NodeId(0),
                part: 1
            }
        );
        let oor = [NodeId(0), NodeId(4), NodeId(8), NodeId(99)];
        assert_eq!(
            s.try_aggregate_with_leaders(&values, AggOp::Sum, &oor)
                .unwrap_err(),
            SessionError::NodeOutOfRange {
                node: NodeId(99),
                num_nodes: 16
            }
        );
        let good = [NodeId(0), NodeId(4), NodeId(8), NodeId(12)];
        let ok = s
            .try_aggregate_with_leaders(&values, AggOp::Sum, &good)
            .expect("row-leading leaders");
        assert!(ok.result.all_members_informed);
    }

    #[test]
    fn try_unicast_validates_demands() {
        let g = gen::grid(4, 4);
        let mut s = Session::on(&g).build().unwrap();
        assert_eq!(
            s.try_unicast(&[(NodeId(0), NodeId(99))]).unwrap_err(),
            SessionError::NodeOutOfRange {
                node: NodeId(99),
                num_nodes: 16
            }
        );
        assert_eq!(
            s.try_unicast(&[(NodeId(0), NodeId(5)), (NodeId(3), NodeId(3))])
                .unwrap_err(),
            SessionError::UnicastSelfLoop { packet: 1 }
        );
        let ok = s
            .try_unicast(&[(NodeId(0), NodeId(15))])
            .expect("valid demand");
        assert_eq!(ok.result.delivered, 1);
    }
}
