//! Part-wise aggregation (Definition 2.1 of the paper), centralized and
//! distributed.
//!
//! Given a partition into connected parts and a value per node, every node
//! of part `P_i` must learn an aggregate (min / max / sum) of its part's
//! values. Shortcuts exist precisely to make this fast: the distributed
//! solver runs one echo protocol per part over `G[P_i] + H_i` — offer wave
//! from the leader, adopt/decline replies, convergecast, result broadcast —
//! multiplexed with the random-delays technique [LMR94, Gha15] on the queued
//! CONGEST simulator, completing in `Õ(congestion + dilation)` rounds.
//!
//! # Example
//!
//! ```
//! use lcs_congest::protocols::AggOp;
//! use lcs_core::{full_shortcut, Partition, ShortcutConfig};
//! use lcs_graph::{bfs, gen, NodeId};
//! use lcs_partwise::{solve_partwise, PartwiseConfig};
//!
//! let g = gen::grid(6, 6);
//! let partition = Partition::from_parts(&g, gen::rows_of_grid(6, 6))?;
//! let tree = bfs::bfs_tree(&g, NodeId(0));
//! let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
//! let values: Vec<u64> = (0..36).collect();
//!
//! let out = solve_partwise(
//!     &g, &partition, &built.shortcut, &values, AggOp::Max, None,
//!     &PartwiseConfig::default(),
//! );
//! assert!(out.all_members_informed);
//! assert_eq!(out.results[0], Some(5)); // max of row 0's values 0..=5
//! # Ok::<(), lcs_core::PartitionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod centralized;
mod dist;
pub mod gossip;
pub mod session_ops;
pub mod unicast;

pub use centralized::centralized_aggregate;
pub use dist::{solve_partwise, AggregateOp, ParticipationMap, PartwiseConfig, PartwiseOutcome};
pub use gossip::{gossip_aggregate, GossipOp, GossipOutcome, IdempotentOp};
pub use session_ops::SessionPartwiseOps;
pub use unicast::{route_multiple_unicasts, UnicastConfig, UnicastOp, UnicastOutcome};
