//! Multiple unicasts along tree paths — the second communication primitive
//! the paper lists next to part-wise aggregation (§1.2).
//!
//! Given packets `(s_i, t_i)` routed along their unique tree paths, the
//! random-delays technique [LMR94, Gha15] delivers all of them in
//! `O(congestion + dilation·log n)` rounds, where congestion is the maximum
//! number of paths over an edge and dilation the maximum path length. This
//! module implements the store-and-forward protocol on the queued simulator
//! and reports measured rounds against those two quantities.

use lcs_congest::{
    Ctx, Incoming, MessageSize, NodeProgram, RunMetrics, SimConfig, SimMode, Simulator,
};
use lcs_core::session::{OpReport, PartwiseOp, ShortcutSession};
use lcs_graph::{Graph, NodeId, RootedTree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for [`route_multiple_unicasts`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnicastConfig {
    /// Packets start after a uniform random delay in `[0, delay_range)`
    /// (0 disables delays; the per-packet queue priority still randomizes
    /// drain order).
    pub delay_range: u32,
    /// Seed for delays and priorities.
    pub seed: u64,
    /// Simulator settings (mode forced to queued;
    /// [`SimConfig::threads`] selects the sharded executor's worker count).
    pub sim: SimConfig,
}

impl Default for UnicastConfig {
    fn default() -> Self {
        UnicastConfig {
            delay_range: 0,
            seed: 0x0417,
            sim: SimConfig::default(),
        }
    }
}

/// Result of a routing run.
#[derive(Clone, Debug)]
pub struct UnicastOutcome {
    /// Number of packets that reached their targets.
    pub delivered: usize,
    /// The instance's path congestion `c` (max paths over one edge).
    pub congestion: u32,
    /// The instance's dilation `d` (max path length in edges).
    pub dilation: u32,
    /// Simulation metrics; `metrics.rounds` is the headline number, to be
    /// compared against `c + d`.
    pub metrics: RunMetrics,
}

/// A packet in flight: its id (index into the pair list).
#[derive(Clone, Copy, Debug)]
struct Packet(u32);

impl MessageSize for Packet {
    fn size_bits(&self) -> usize {
        32
    }
}

struct RouterProgram {
    /// packet id -> outgoing port for packets this node must forward.
    forward: HashMap<u32, usize>,
    /// Packets originating here: (packet id, remaining delay).
    inject: Vec<(u32, u32)>,
    /// Packet ids this node is the target of (receipt recorded here).
    expect: Vec<u32>,
    received: Vec<u32>,
    /// Per-packet priorities (shared random map).
    priority: HashMap<u32, u64>,
}

impl RouterProgram {
    fn send_packet(&self, id: u32, ctx: &mut Ctx<'_, Packet>) {
        let port = self.forward[&id];
        ctx.send_with_priority(port, Packet(id), self.priority[&id]);
    }
}

impl NodeProgram for RouterProgram {
    type Msg = Packet;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Packet>) {
        let ready: Vec<u32> = self
            .inject
            .iter()
            .filter(|&&(_, d)| d == 0)
            .map(|&(id, _)| id)
            .collect();
        self.inject.retain(|&(_, d)| d > 0);
        for id in ready {
            self.send_packet(id, ctx);
        }
        if !self.inject.is_empty() {
            ctx.wake_next_round();
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, Packet>, inbox: &[Incoming<Packet>]) {
        if !self.inject.is_empty() {
            let mut ready = Vec::new();
            for item in &mut self.inject {
                item.1 -= 1;
                if item.1 == 0 {
                    ready.push(item.0);
                }
            }
            self.inject.retain(|&(_, d)| d > 0);
            for id in ready {
                self.send_packet(id, ctx);
            }
            if !self.inject.is_empty() {
                ctx.wake_next_round();
            }
        }
        for m in inbox {
            let id = m.msg.0;
            if self.expect.contains(&id) {
                self.received.push(id);
            } else {
                self.send_packet(id, ctx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.inject.is_empty() && self.received.len() == self.expect.len()
    }
}

/// Multi-unicast routing as a session-drivable operation ([`PartwiseOp`]):
/// one packet per `(source, target)` demand, store-and-forward along the
/// unique tree paths under random-delay scheduling.
///
/// `session.run(UnicastOp { .. })` (or the facade's `session.unicast(..)`)
/// routes over the session's cached tree; the legacy
/// [`route_multiple_unicasts`] free function takes an explicit tree.
#[derive(Clone, Copy, Debug)]
pub struct UnicastOp<'a> {
    /// The `(source, target)` demand pairs.
    pub demands: &'a [(NodeId, NodeId)],
}

impl PartwiseOp for UnicastOp<'_> {
    type Output = UnicastOutcome;

    fn run(self, session: &mut ShortcutSession<'_>) -> OpReport<UnicastOutcome> {
        let sc = session.config();
        let cfg = UnicastConfig {
            delay_range: sc.unicast.delay_range,
            seed: sc.unicast.seed,
            sim: sc.unicast_sim(),
        };
        let g = session.graph();
        // Routing needs only the tree — it must not force a shortcut
        // construction on sessions used purely for unicast serving.
        let out = self.run_on(g, session.tree(), &cfg);
        let metrics = out.metrics.clone();
        OpReport::from_metrics(out, &metrics, None)
    }
}

impl UnicastOp<'_> {
    /// Routes over an explicit tree (the non-session path).
    ///
    /// # Panics
    ///
    /// Panics if some endpoint lies outside the tree's component, or a
    /// source equals its target.
    pub fn run_on(&self, g: &Graph, tree: &RootedTree, cfg: &UnicastConfig) -> UnicastOutcome {
        let pairs = self.demands;
        // Tree paths (up to the LCA, then down) with per-edge load counting.
        let mut load = vec![0u32; g.num_edges()];
        let mut dilation = 0u32;
        // forward tables: node -> (packet -> port).
        let mut forward: Vec<HashMap<u32, usize>> = vec![HashMap::new(); g.num_nodes()];
        for (i, &(s, t)) in pairs.iter().enumerate() {
            assert!(s != t, "source equals target for packet {i}");
            assert!(
                tree.contains(s) && tree.contains(t),
                "unicast endpoints must be in the tree"
            );
            let path = tree_path(tree, s, t);
            dilation = dilation.max(path.len() as u32);
            let mut cur = s;
            for &next in &path {
                let port = g.port_to(cur, next).expect("tree path steps along edges");
                let edge = g.edge_ids(cur)[port];
                load[edge.index()] += 1;
                forward[cur.index()].insert(i as u32, port);
                cur = next;
            }
        }
        let congestion = load.iter().copied().max().unwrap_or(0);

        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let delays: Vec<u32> = pairs
            .iter()
            .map(|_| {
                if cfg.delay_range == 0 {
                    0
                } else {
                    rng.gen_range(0..cfg.delay_range)
                }
            })
            .collect();
        let priorities: Vec<u64> = pairs.iter().map(|_| rng.gen()).collect();

        let sim_cfg = SimConfig {
            mode: SimMode::Queued,
            ..cfg.sim
        };
        let sim = Simulator::new(g, sim_cfg);
        let run = sim.run(|v, _| {
            let mut priority = HashMap::new();
            let fwd = forward[v.index()].clone();
            for &id in fwd.keys() {
                priority.insert(id, priorities[id as usize]);
            }
            let inject: Vec<(u32, u32)> = pairs
                .iter()
                .enumerate()
                .filter(|&(_, &(s, _))| s == v)
                .map(|(i, _)| (i as u32, delays[i]))
                .collect();
            for &(id, _) in &inject {
                priority.insert(id, priorities[id as usize]);
            }
            let expect: Vec<u32> = pairs
                .iter()
                .enumerate()
                .filter(|&(_, &(_, t))| t == v)
                .map(|(i, _)| i as u32)
                .collect();
            RouterProgram {
                forward: fwd,
                inject,
                expect,
                received: Vec::new(),
                priority,
            }
        });

        let delivered = run.programs.iter().map(|p| p.received.len()).sum::<usize>();
        UnicastOutcome {
            delivered,
            congestion,
            dilation,
            metrics: run.metrics,
        }
    }
}

/// Routes one packet per `(source, target)` pair along its unique tree path,
/// all pairs concurrently, under random-delay scheduling — the legacy
/// free-function surface, now a one-line wrapper over [`UnicastOp::run_on`].
/// For repeated routing on one topology prefer a [`ShortcutSession`], which
/// caches the tree between calls.
///
/// # Panics
///
/// Panics if some endpoint lies outside the tree's component, or a source
/// equals its target.
pub fn route_multiple_unicasts(
    g: &Graph,
    tree: &RootedTree,
    pairs: &[(NodeId, NodeId)],
    cfg: &UnicastConfig,
) -> UnicastOutcome {
    UnicastOp { demands: pairs }.run_on(g, tree, cfg)
}

/// The node sequence from `s` to `t` along the tree (excluding `s`,
/// including `t`): ascend to the LCA, then descend.
fn tree_path(tree: &RootedTree, s: NodeId, t: NodeId) -> Vec<NodeId> {
    let (mut a, mut b) = (s, t);
    let mut up = Vec::new(); // nodes after s, ascending (ends at the LCA)
    let mut down = Vec::new(); // nodes from t upward, excluding the LCA
    while tree.depth(a) > tree.depth(b) {
        a = tree.parent(a).expect("deeper node has parent").0;
        up.push(a);
    }
    while tree.depth(b) > tree.depth(a) {
        down.push(b);
        b = tree.parent(b).expect("deeper node has parent").0;
    }
    while a != b {
        a = tree.parent(a).expect("non-root").0;
        up.push(a);
        down.push(b);
        b = tree.parent(b).expect("non-root").0;
    }
    // If s itself is the LCA, `up` is empty and the descent starts at s.
    up.extend(down.into_iter().rev());
    up
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{bfs, gen};

    fn tree_of(g: &Graph) -> RootedTree {
        bfs::bfs_tree(g, NodeId(0))
    }

    #[test]
    fn tree_path_cases() {
        let g = gen::path(7);
        let t = tree_of(&g);
        // Ancestor to descendant.
        assert_eq!(
            tree_path(&t, NodeId(1), NodeId(4)),
            vec![NodeId(2), NodeId(3), NodeId(4)]
        );
        // Descendant to ancestor.
        assert_eq!(
            tree_path(&t, NodeId(4), NodeId(1)),
            vec![NodeId(3), NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn tree_path_through_lca() {
        let g = gen::grid(3, 3);
        let t = tree_of(&g);
        let path = tree_path(&t, NodeId(6), NodeId(2));
        // Path must end at the target and walk along tree edges.
        assert_eq!(*path.last().unwrap(), NodeId(2));
        let mut cur = NodeId(6);
        for &next in &path {
            assert!(
                g.has_edge(cur, next),
                "step {cur:?} -> {next:?} not an edge"
            );
            cur = next;
        }
    }

    #[test]
    fn all_packets_delivered_on_grid() {
        let g = gen::grid(8, 8);
        let t = tree_of(&g);
        let pairs: Vec<(NodeId, NodeId)> = (0..16).map(|i| (NodeId(i), NodeId(63 - i))).collect();
        let out = route_multiple_unicasts(&g, &t, &pairs, &UnicastConfig::default());
        assert!(out.metrics.terminated);
        assert_eq!(out.delivered, 16);
        assert!(out.congestion >= 1 && out.dilation >= 1);
        // LMR shape: rounds within a small factor of c + d.
        let budget = u64::from(out.congestion + out.dilation);
        assert!(
            out.metrics.rounds <= 4 * budget,
            "rounds {} vs budget {budget}",
            out.metrics.rounds
        );
    }

    #[test]
    fn hotspot_congestion_is_serialized_fairly() {
        // Star: every packet must cross the hub; congestion = k.
        let g = gen::star(12);
        let t = tree_of(&g);
        let pairs: Vec<(NodeId, NodeId)> = (1..7).map(|i| (NodeId(i), NodeId(i + 5))).collect();
        let out = route_multiple_unicasts(&g, &t, &pairs, &UnicastConfig::default());
        assert_eq!(out.delivered, 6);
        assert_eq!(out.dilation, 2);
        // All six packets enter distinct hub edges but leave over distinct
        // edges too; rounds stay near c + d.
        assert!(out.metrics.rounds <= u64::from(out.congestion + out.dilation) + 2);
    }

    #[test]
    fn random_delays_do_not_lose_packets() {
        let g = gen::torus(6, 6);
        let t = tree_of(&g);
        let pairs: Vec<(NodeId, NodeId)> = (0..12).map(|i| (NodeId(i), NodeId(35 - i))).collect();
        let cfg = UnicastConfig {
            delay_range: 8,
            ..UnicastConfig::default()
        };
        let out = route_multiple_unicasts(&g, &t, &pairs, &cfg);
        assert_eq!(out.delivered, 12);
    }

    #[test]
    #[should_panic(expected = "source equals target")]
    fn rejects_self_pairs() {
        let g = gen::path(3);
        let t = tree_of(&g);
        route_multiple_unicasts(&g, &t, &[(NodeId(1), NodeId(1))], &UnicastConfig::default());
    }

    use lcs_graph::Graph;
}
