//! Centralized reference for part-wise aggregation.

use lcs_congest::protocols::AggOp;
use lcs_core::Partition;

/// Identity element of an aggregation operator.
pub(crate) fn identity(op: AggOp) -> u64 {
    match op {
        AggOp::Sum => 0,
        AggOp::Min => u64::MAX,
        AggOp::Max => 0,
    }
}

/// Computes each part's aggregate directly — the ground truth the
/// distributed solver is checked against.
///
/// # Panics
///
/// Panics if `values` has fewer entries than the partition references.
pub fn centralized_aggregate(partition: &Partition, values: &[u64], op: AggOp) -> Vec<u64> {
    partition
        .iter()
        .map(|(_, nodes)| {
            nodes
                .iter()
                .map(|v| values[v.index()])
                .fold(identity(op), |a, b| op.apply(a, b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    #[test]
    fn aggregates_per_part() {
        let g = gen::grid(2, 3);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(2, 3)).unwrap();
        let values = vec![5, 1, 9, 100, 2, 30];
        assert_eq!(
            centralized_aggregate(&partition, &values, AggOp::Min),
            vec![1, 2]
        );
        assert_eq!(
            centralized_aggregate(&partition, &values, AggOp::Max),
            vec![9, 100]
        );
        assert_eq!(
            centralized_aggregate(&partition, &values, AggOp::Sum),
            vec![15, 132]
        );
    }
}
