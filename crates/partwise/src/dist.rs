//! Distributed part-wise aggregation over shortcut subgraphs.

use crate::centralized::identity;
use lcs_congest::protocols::AggOp;
use lcs_congest::{
    id_bits, Ctx, Incoming, MessageSize, NodeProgram, RunMetrics, SimConfig, SimMode, Simulator,
};
use lcs_core::session::{deps, OpReport, PartwiseOp, ShortcutSession};
use lcs_core::{Partition, Shortcut};
use lcs_graph::{Graph, NodeId, PartId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the distributed solver.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartwiseConfig {
    /// Leaders delay their start uniformly in `[0, delay_range)` rounds —
    /// the random-delays smoothing; `0` disables delays.
    pub delay_range: u32,
    /// Seed for delays.
    pub seed: u64,
    /// Simulator settings; the mode is forced to
    /// [`Queued`](lcs_congest::SimMode::Queued) because several protocol
    /// instances share edges. [`SimConfig::threads`] flows through to the
    /// sharded round executor — results and metrics are identical at any
    /// thread count.
    pub sim: SimConfig,
}

impl Default for PartwiseConfig {
    fn default() -> Self {
        PartwiseConfig {
            delay_range: 0,
            seed: 0xde1af,
            sim: SimConfig::default(),
        }
    }
}

/// Result of [`solve_partwise`].
#[derive(Clone, Debug)]
pub struct PartwiseOutcome {
    /// Aggregate per part as known by its leader (`None` if the leader never
    /// finished, e.g. because `G[P_i] + H_i` is disconnected).
    pub results: Vec<Option<u64>>,
    /// Whether every member of every part learned its part's result.
    pub all_members_informed: bool,
    /// Simulation metrics (rounds are the headline number: expect
    /// `Õ(congestion + dilation)`).
    pub metrics: RunMetrics,
}

/// Per node, per part, the participating ports — the subgraph
/// `G[P_i] + H_i` every part-wise protocol runs over. An edge participates
/// in part `i` iff it is in `H_i` or both endpoints lie in `P_i`
/// (Definition 2.1); this rule is shared by the leader-based solver and
/// the gossip solver, so it lives in exactly one place.
///
/// Building the map is O(n + m) — per-query cost a serving deployment
/// should not pay twice. The session-driven ops cache one instance in the
/// session's derived-artifact store
/// ([`ShortcutSession::op_artifact_patched`]), keyed by this type: every
/// later aggregate/gossip call reuses it while the partition and shortcut
/// are unchanged, a tracked `reassign_parts` churn refreshes only the
/// touched parts' entries via [`ParticipationMap::refreshed`], and a
/// wholesale partition change rebuilds it. The legacy free functions build
/// a fresh one per call.
#[derive(Clone, Debug)]
pub struct ParticipationMap {
    per_node: Vec<HashMap<u32, Vec<usize>>>,
}

impl ParticipationMap {
    /// Derives the map from a graph, partition, and shortcut (the
    /// signature [`ShortcutSession::op_artifact`] expects).
    ///
    /// # Panics
    ///
    /// Panics if the shortcut's shape differs from the partition's.
    pub fn build(g: &Graph, partition: &Partition, shortcut: &Shortcut) -> Self {
        assert_eq!(
            shortcut.num_parts(),
            partition.num_parts(),
            "shortcut and partition shapes differ"
        );
        let mut participation: Vec<HashMap<u32, Vec<usize>>> = vec![HashMap::new(); g.num_nodes()];
        let mut register = |part: u32, u: NodeId, v: NodeId| {
            let pu = g.port_to(u, v).expect("edge endpoints adjacent");
            participation[u.index()].entry(part).or_default().push(pu);
        };
        for (pid, _) in partition.iter() {
            for &e in shortcut.edges_for(pid) {
                let (u, v) = g.endpoints(e);
                register(pid.0, u, v);
                register(pid.0, v, u);
            }
        }
        for er in g.edges() {
            if let (Some(a), Some(b)) = (partition.part_of(er.u), partition.part_of(er.v)) {
                if a == b && !shortcut.contains(a, er.id) {
                    register(a.0, er.u, er.v);
                    register(a.0, er.v, er.u);
                }
            }
        }
        for lists in &mut participation {
            for ports in lists.values_mut() {
                ports.sort_unstable();
                ports.dedup();
            }
        }
        ParticipationMap {
            per_node: participation,
        }
    }

    /// An incrementally refreshed copy: the entries of the `touched` parts
    /// are dropped everywhere and re-registered from the (new) partition
    /// and shortcut; every other part's entries are carried over untouched.
    /// Equals [`ParticipationMap::build`] on the same inputs, at
    /// O(n·|touched| + Σ_{i ∈ touched} (|P_i| · deg + |H_i|)) instead of
    /// O(n + m).
    ///
    /// # Panics
    ///
    /// Panics if the shortcut's shape differs from the partition's.
    pub fn refreshed(
        &self,
        g: &Graph,
        partition: &Partition,
        shortcut: &Shortcut,
        touched: &[PartId],
    ) -> Self {
        assert_eq!(
            shortcut.num_parts(),
            partition.num_parts(),
            "shortcut and partition shapes differ"
        );
        let mut participation = self.per_node.clone();
        for lists in &mut participation {
            for &p in touched {
                lists.remove(&p.0);
            }
        }
        for &pid in touched {
            for &e in shortcut.edges_for(pid) {
                let (u, v) = g.endpoints(e);
                for (a, b) in [(u, v), (v, u)] {
                    let pa = g.port_to(a, b).expect("edge endpoints adjacent");
                    participation[a.index()].entry(pid.0).or_default().push(pa);
                }
            }
            for &u in partition.part(pid) {
                for (port, nb) in g.neighbors(u).enumerate() {
                    if partition.part_of(nb.node) == Some(pid) && !shortcut.contains(pid, nb.edge) {
                        participation[u.index()]
                            .entry(pid.0)
                            .or_default()
                            .push(port);
                    }
                }
            }
        }
        for lists in &mut participation {
            for &p in touched {
                if let Some(ports) = lists.get_mut(&p.0) {
                    ports.sort_unstable();
                    ports.dedup();
                }
            }
        }
        ParticipationMap {
            per_node: participation,
        }
    }

    /// The `part id -> participating ports` lists of one node.
    pub(crate) fn at(&self, v: NodeId) -> &HashMap<u32, Vec<usize>> {
        &self.per_node[v.index()]
    }
}

#[derive(Clone, Copy, Debug)]
enum PaMsg {
    /// BFS-offer wave for a part.
    Offer(u32),
    /// "You are my parent for this part."
    Adopt(u32),
    /// "I already have a parent for this part."
    Decline(u32),
    /// Convergecast: aggregate of the sender's subtree.
    Up(u32, u64),
    /// Result broadcast.
    Down(u32, u64),
}

impl MessageSize for PaMsg {
    fn size_bits(&self) -> usize {
        match self {
            PaMsg::Offer(_) | PaMsg::Adopt(_) | PaMsg::Decline(_) => 3 + 32,
            PaMsg::Up(..) | PaMsg::Down(..) => 3 + 32 + 64,
        }
    }

    /// Part ids are id payloads (`O(log n)` bits); aggregate values keep
    /// their full 64-bit width.
    fn size_bits_in(&self, n: usize) -> usize {
        match self {
            PaMsg::Offer(_) | PaMsg::Adopt(_) | PaMsg::Decline(_) => 3 + id_bits(n),
            PaMsg::Up(..) | PaMsg::Down(..) => 3 + id_bits(n) + 64,
        }
    }
}

/// Per-(node, part) protocol state.
#[derive(Clone, Debug)]
struct PartState {
    ports: Vec<usize>,
    parent: Option<usize>,
    started: bool,
    awaiting_replies: usize,
    children: Vec<usize>,
    pending_up: usize,
    acc: u64,
    is_leader: bool,
    up_sent: bool,
    result: Option<u64>,
}

struct PaProgram {
    op: AggOp,
    /// part id -> state.
    states: HashMap<u32, PartState>,
    /// (part, remaining delay) for leader starts.
    delays: Vec<(u32, u32)>,
    /// Per-part scheduling priority (the part's random delay, reused as a
    /// queue priority so late-starting parts also yield edge access).
    priority: HashMap<u32, u64>,
    /// Sends buffered during one callback, flushed grouped by
    /// `(port, priority)` at the callback's end so same-edge traffic of
    /// different parts is issued consecutively — the shape
    /// [`SimConfig::message_packing`] coalesces into multi-value messages.
    pending: Vec<(usize, u64, PaMsg)>,
}

impl PaProgram {
    fn queue(&mut self, port: usize, msg: PaMsg, prio: u64) {
        self.pending.push((port, prio, msg));
    }

    /// Flushes the callback's buffered sends, stable-sorted by
    /// `(port, priority)`: per-edge order of equal-priority messages is
    /// preserved (FIFO semantics unchanged), while runs on one shared edge
    /// become adjacent and thus packable.
    fn flush_pending(&mut self, ctx: &mut Ctx<'_, PaMsg>) {
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by_key(|&(port, prio, _)| (port, prio));
        for (port, prio, msg) in pending.drain(..) {
            ctx.send_with_priority(port, msg, prio);
        }
        self.pending = pending;
    }

    fn start_part(&mut self, part: u32) {
        let prio = self.priority[&part];
        let st = self.states.get_mut(&part).expect("leader state exists");
        st.started = true;
        st.awaiting_replies = st.ports.len();
        let ports = st.ports.clone();
        for p in ports {
            self.queue(p, PaMsg::Offer(part), prio);
        }
        self.maybe_up(part);
    }

    fn maybe_up(&mut self, part: u32) {
        let prio = self.priority[&part];
        let st = self.states.get_mut(&part).expect("state exists");
        if st.up_sent || !st.started || st.awaiting_replies > 0 || st.pending_up > 0 {
            return;
        }
        st.up_sent = true;
        if st.is_leader {
            st.result = Some(st.acc);
            let acc = st.acc;
            let children = st.children.clone();
            for p in children {
                self.queue(p, PaMsg::Down(part, acc), prio);
            }
        } else {
            let parent = st.parent.expect("non-leader has a parent once started");
            let acc = st.acc;
            self.queue(parent, PaMsg::Up(part, acc), prio);
        }
    }
}

impl NodeProgram for PaProgram {
    type Msg = PaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, PaMsg>) {
        let immediate: Vec<u32> = self
            .delays
            .iter()
            .filter(|&&(_, d)| d == 0)
            .map(|&(p, _)| p)
            .collect();
        self.delays.retain(|&(_, d)| d > 0);
        for part in immediate {
            self.start_part(part);
        }
        if !self.delays.is_empty() {
            ctx.wake_next_round();
        }
        self.flush_pending(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, PaMsg>, inbox: &[Incoming<PaMsg>]) {
        // Tick leader delays.
        if !self.delays.is_empty() {
            let mut ready = Vec::new();
            for d in &mut self.delays {
                d.1 -= 1;
                if d.1 == 0 {
                    ready.push(d.0);
                }
            }
            self.delays.retain(|&(_, d)| d > 0);
            for part in ready {
                self.start_part(part);
            }
            if !self.delays.is_empty() {
                ctx.wake_next_round();
            }
        }

        for m in inbox {
            match m.msg {
                PaMsg::Offer(part) => {
                    let prio = self.priority[&part];
                    let st = self
                        .states
                        .get_mut(&part)
                        .expect("offer only travels participating edges");
                    if st.started {
                        self.queue(m.port, PaMsg::Decline(part), prio);
                    } else {
                        st.started = true;
                        st.parent = Some(m.port);
                        st.awaiting_replies = st.ports.len() - 1;
                        let ports = st.ports.clone();
                        self.queue(m.port, PaMsg::Adopt(part), prio);
                        for p in ports {
                            if p != m.port {
                                self.queue(p, PaMsg::Offer(part), prio);
                            }
                        }
                        self.maybe_up(part);
                    }
                }
                PaMsg::Adopt(part) => {
                    let st = self.states.get_mut(&part).expect("state exists");
                    st.children.push(m.port);
                    st.pending_up += 1;
                    st.awaiting_replies -= 1;
                    self.maybe_up(part);
                }
                PaMsg::Decline(part) => {
                    let st = self.states.get_mut(&part).expect("state exists");
                    st.awaiting_replies -= 1;
                    self.maybe_up(part);
                }
                PaMsg::Up(part, val) => {
                    let op = self.op;
                    let st = self.states.get_mut(&part).expect("state exists");
                    st.acc = op.apply(st.acc, val);
                    st.pending_up -= 1;
                    self.maybe_up(part);
                }
                PaMsg::Down(part, val) => {
                    let prio = self.priority[&part];
                    let st = self.states.get_mut(&part).expect("state exists");
                    if st.result.is_none() {
                        st.result = Some(val);
                        let children = st.children.clone();
                        for p in children {
                            self.queue(p, PaMsg::Down(part, val), prio);
                        }
                    }
                }
            }
        }
        self.flush_pending(ctx);
    }

    fn is_done(&self) -> bool {
        self.states.values().all(|st| st.result.is_some())
    }
}

/// Part-wise aggregation as a session-drivable operation ([`PartwiseOp`]):
/// every node of part `P_i` learns the aggregate of its part's values,
/// computed by one echo protocol per part over `G[P_i] + H_i`.
///
/// Used in two ways: `session.run(AggregateOp { .. })` (or the facade's
/// `session.aggregate(..)` sugar) serves it from the session's cached
/// shortcut; the legacy [`solve_partwise`] free function runs it over
/// explicitly supplied artifacts.
#[derive(Clone, Copy, Debug)]
pub struct AggregateOp<'a> {
    /// One value per node.
    pub values: &'a [u64],
    /// The aggregation operator.
    pub op: AggOp,
    /// Explicit per-part leaders; `None` elects the minimum-id member.
    pub leaders: Option<&'a [NodeId]>,
}

impl PartwiseOp for AggregateOp<'_> {
    type Output = PartwiseOutcome;

    fn run(self, session: &mut ShortcutSession<'_>) -> OpReport<PartwiseOutcome> {
        session.prepare();
        let quality = session.quality_shared();
        // The O(n + m) participation map is a session artifact: built on
        // the first aggregate/gossip call, reused by every later one, and
        // refreshed only for the touched parts under reassign_parts churn.
        let participation = session.op_artifact_patched(
            deps::SHORTCUT,
            |s| ParticipationMap::build(s.graph(), s.partition(), s.shortcut_ref()),
            |s, old: &ParticipationMap, touched| {
                old.refreshed(s.graph(), s.partition(), s.shortcut_ref(), touched)
            },
        );
        let sc = session.config();
        let cfg = PartwiseConfig {
            delay_range: sc.aggregate.delay_range,
            seed: sc.aggregate.seed,
            sim: sc.aggregate_sim(),
        };
        let out = self.run_with(session.graph(), session.partition(), &cfg, &participation);
        let metrics = out.metrics.clone();
        OpReport::from_metrics(out, &metrics, quality)
    }
}

impl AggregateOp<'_> {
    /// Runs the protocol over explicit artifacts (the non-session path).
    ///
    /// # Panics
    ///
    /// Panics if `self.values.len() != g.num_nodes()`, a leader is not a
    /// member of its part, or the shortcut's shape differs from the
    /// partition's.
    pub fn run_on(
        &self,
        g: &Graph,
        partition: &Partition,
        shortcut: &Shortcut,
        cfg: &PartwiseConfig,
    ) -> PartwiseOutcome {
        let participation = ParticipationMap::build(g, partition, shortcut);
        self.run_with(g, partition, cfg, &participation)
    }

    /// Runs the protocol over a prebuilt [`ParticipationMap`] — the path
    /// the session ops take with the cached map.
    fn run_with(
        &self,
        g: &Graph,
        partition: &Partition,
        cfg: &PartwiseConfig,
        participation: &ParticipationMap,
    ) -> PartwiseOutcome {
        let (values, op, leaders) = (self.values, self.op, self.leaders);
        assert_eq!(values.len(), g.num_nodes(), "one value per node");
        let k = partition.num_parts();
        let default_leaders: Vec<NodeId> = partition
            .iter()
            .map(|(_, nodes)| *nodes.iter().min().expect("parts are non-empty"))
            .collect();
        let leaders = leaders.unwrap_or(&default_leaders);
        assert_eq!(leaders.len(), k, "one leader per part");
        for (i, &l) in leaders.iter().enumerate() {
            assert_eq!(
                partition.part_of(l),
                Some(PartId(i as u32)),
                "leader {l:?} is not a member of part {i}"
            );
        }

        // Random delays per part.
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let delays: Vec<u32> = (0..k)
            .map(|_| {
                if cfg.delay_range == 0 {
                    0
                } else {
                    rng.gen_range(0..cfg.delay_range)
                }
            })
            .collect();

        let sim_cfg = SimConfig {
            mode: SimMode::Queued,
            ..cfg.sim
        };
        let sim = Simulator::new(g, sim_cfg);
        let run = sim.run(|v, _| {
            let mut states = HashMap::new();
            let mut priority = HashMap::new();
            let mut node_delays = Vec::new();
            // States for parts this node participates in (as relay or member).
            let mut parts: Vec<u32> = participation.at(v).keys().copied().collect();
            if let Some(pid) = partition.part_of(v) {
                if !parts.contains(&pid.0) {
                    parts.push(pid.0); // singleton part without edges
                }
            }
            for part in parts {
                let is_member = partition.part_of(v) == Some(PartId(part));
                let is_leader = leaders[part as usize] == v;
                let ports = participation.at(v).get(&part).cloned().unwrap_or_default();
                states.insert(
                    part,
                    PartState {
                        ports,
                        parent: None,
                        started: false,
                        awaiting_replies: 0,
                        children: Vec::new(),
                        pending_up: 0,
                        acc: if is_member {
                            values[v.index()]
                        } else {
                            identity(op)
                        },
                        is_leader,
                        up_sent: false,
                        result: None,
                    },
                );
                priority.insert(part, u64::from(delays[part as usize]));
                if is_leader {
                    node_delays.push((part, delays[part as usize]));
                }
            }
            PaProgram {
                op,
                states,
                delays: node_delays,
                priority,
                pending: Vec::new(),
            }
        });

        // Collect results.
        let mut results: Vec<Option<u64>> = vec![None; k];
        let mut all_informed = true;
        for (i, &leader) in leaders.iter().enumerate() {
            let part = i as u32;
            results[i] = run.programs[leader.index()]
                .states
                .get(&part)
                .and_then(|st| st.result);
            for &member in partition.part(PartId(part)) {
                let informed = run.programs[member.index()]
                    .states
                    .get(&part)
                    .map(|st| st.result.is_some())
                    .unwrap_or(false);
                if !informed {
                    all_informed = false;
                }
            }
        }

        PartwiseOutcome {
            results,
            all_members_informed: all_informed,
            metrics: run.metrics,
        }
    }
}

/// Solves part-wise aggregation distributedly over `G[P_i] + H_i` —
/// the legacy free-function surface, now a one-line wrapper over
/// [`AggregateOp::run_on`]. For repeated queries on one topology prefer a
/// [`ShortcutSession`], which caches the shortcut between calls.
///
/// `leaders[i]`, when given, must be a member of part `i`; by default the
/// minimum-id member leads. Every part's subgraph must be connected for the
/// run to complete (a disconnected part simply never finishes and is
/// reported as uninformed).
///
/// # Panics
///
/// Panics if `values.len() != g.num_nodes()`, a leader is not a member of
/// its part, or the shortcut's shape differs from the partition's.
pub fn solve_partwise(
    g: &Graph,
    partition: &Partition,
    shortcut: &Shortcut,
    values: &[u64],
    op: AggOp,
    leaders: Option<&[NodeId]>,
    cfg: &PartwiseConfig,
) -> PartwiseOutcome {
    AggregateOp {
        values,
        op,
        leaders,
    }
    .run_on(g, partition, shortcut, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::{baseline, full_shortcut, ShortcutConfig};
    use lcs_graph::{bfs, gen};

    fn grid_setup(side: usize) -> (Graph, Partition, Shortcut) {
        let g = gen::grid(side, side);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(side, side)).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        (g, partition, built.shortcut)
    }

    #[test]
    fn matches_centralized_for_all_ops() {
        let (g, partition, shortcut) = grid_setup(8);
        let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| (x * 37) % 101).collect();
        for op in [AggOp::Min, AggOp::Max, AggOp::Sum] {
            let out = solve_partwise(
                &g,
                &partition,
                &shortcut,
                &values,
                op,
                None,
                &PartwiseConfig::default(),
            );
            assert!(out.metrics.terminated);
            assert!(out.all_members_informed);
            let expect = crate::centralized_aggregate(&partition, &values, op);
            let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn no_shortcut_still_correct_but_slower() {
        let (g, partition, shortcut) = grid_setup(8);
        let empty = baseline::no_shortcut(&partition);
        let values: Vec<u64> = (0..g.num_nodes() as u64).collect();
        let with = solve_partwise(
            &g,
            &partition,
            &shortcut,
            &values,
            AggOp::Sum,
            None,
            &PartwiseConfig::default(),
        );
        let without = solve_partwise(
            &g,
            &partition,
            &empty,
            &values,
            AggOp::Sum,
            None,
            &PartwiseConfig::default(),
        );
        assert!(with.all_members_informed && without.all_members_informed);
        assert_eq!(with.results, without.results);
        // On short row parts the shortcut brings no speedup (the rows are
        // already paths of length 7) — correctness must hold either way. The
        // wheel test below covers the speedup claim.
    }

    #[test]
    fn wheel_rim_needs_shortcuts() {
        // The paper's Section 2 wheel example: D = 2, rim diameter Θ(n).
        let n = 64;
        let g = gen::wheel(n);
        let rim: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
        let partition = Partition::from_parts(&g, vec![rim]).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let values: Vec<u64> = (0..n as u64).collect();

        let with = solve_partwise(
            &g,
            &partition,
            &built.shortcut,
            &values,
            AggOp::Max,
            None,
            &PartwiseConfig::default(),
        );
        let without = solve_partwise(
            &g,
            &partition,
            &baseline::no_shortcut(&partition),
            &values,
            AggOp::Max,
            None,
            &PartwiseConfig::default(),
        );
        assert_eq!(with.results[0], Some(n as u64 - 1));
        assert_eq!(without.results[0], Some(n as u64 - 1));
        // Shortcut routes through the hub: O(1) diameter vs Θ(n) rim walk.
        assert!(
            with.metrics.rounds * 4 < without.metrics.rounds,
            "with {} vs without {}",
            with.metrics.rounds,
            without.metrics.rounds
        );
    }

    #[test]
    fn disconnected_shortcut_reports_uninformed() {
        let g = gen::path(6);
        let partition = Partition::from_parts(&g, vec![vec![NodeId(0), NodeId(1)]]).unwrap();
        // A shortcut edge disconnected from the part.
        let far = g.find_edge(NodeId(4), NodeId(5)).unwrap();
        let s = Shortcut::from_edge_lists(vec![vec![far]]);
        let values = vec![1; 6];
        let out = solve_partwise(
            &g,
            &partition,
            &s,
            &values,
            AggOp::Sum,
            None,
            &PartwiseConfig::default(),
        );
        // The members finish (their side is connected) and the run quiesces
        // early, but the relay island never hears an offer, so the run does
        // not count as fully terminated.
        assert!(!out.metrics.terminated);
        assert!(out.metrics.rounds < 100);
        assert!(out.all_members_informed);
        assert_eq!(out.results[0], Some(2));
    }

    #[test]
    fn explicit_leaders_and_delays() {
        let (g, partition, shortcut) = grid_setup(6);
        let leaders: Vec<NodeId> = partition
            .iter()
            .map(|(_, nodes)| *nodes.last().unwrap())
            .collect();
        let values = vec![3u64; g.num_nodes()];
        let out = solve_partwise(
            &g,
            &partition,
            &shortcut,
            &values,
            AggOp::Sum,
            Some(&leaders),
            &PartwiseConfig {
                delay_range: 8,
                ..PartwiseConfig::default()
            },
        );
        assert!(out.all_members_informed);
        assert!(out.results.iter().all(|&r| r == Some(18)));
    }

    /// The heaviest queued-mode consumer (many instances, mixed random-delay
    /// priorities) must be invisible to the thread count: same results,
    /// same metrics.
    #[test]
    fn partwise_is_thread_count_invariant() {
        let (g, partition, shortcut) = grid_setup(8);
        let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| x * 7 % 31).collect();
        let run_with = |threads| {
            solve_partwise(
                &g,
                &partition,
                &shortcut,
                &values,
                AggOp::Sum,
                None,
                &PartwiseConfig {
                    delay_range: 12,
                    sim: SimConfig {
                        threads,
                        ..SimConfig::default()
                    },
                    ..PartwiseConfig::default()
                },
            )
        };
        let t1 = run_with(1);
        assert!(t1.all_members_informed);
        for threads in [2, 4] {
            let t = run_with(threads);
            assert_eq!(t.results, t1.results, "threads={threads}");
            assert_eq!(t.metrics.counts(), t1.metrics.counts(), "threads={threads}");
        }
    }

    #[test]
    fn refreshed_participation_matches_fresh_build() {
        // Drive the real churn path: the session's incremental shortcut
        // keeps untouched parts' H_i byte-identical, which is exactly the
        // contract `refreshed` relies on.
        use lcs_core::session::Session;
        let g = gen::grid(6, 6);
        let mut session = Session::on(&g)
            .partition(gen::rows_of_grid(6, 6))
            .build()
            .unwrap();
        session.prepare();
        let old_map = ParticipationMap::build(&g, session.partition(), session.shortcut_ref());
        let touched = session.reassign_parts(&[(NodeId(6), PartId(0))]).unwrap();
        assert_eq!(touched, vec![PartId(0), PartId(1)]);
        session.prepare(); // re-customizes the touched parts in place
        let refreshed =
            old_map.refreshed(&g, session.partition(), session.shortcut_ref(), &touched);
        let fresh = ParticipationMap::build(&g, session.partition(), session.shortcut_ref());
        for v in g.nodes() {
            let mut a: Vec<_> = refreshed.at(v).iter().collect();
            let mut b: Vec<_> = fresh.at(v).iter().collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "node {v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn foreign_leader_rejected() {
        let (g, partition, shortcut) = grid_setup(4);
        let bad: Vec<NodeId> = vec![NodeId(0); 4];
        let values = vec![0u64; g.num_nodes()];
        solve_partwise(
            &g,
            &partition,
            &shortcut,
            &values,
            AggOp::Sum,
            Some(&bad),
            &PartwiseConfig::default(),
        );
    }

    use lcs_graph::Graph;
}
