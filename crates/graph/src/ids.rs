//! Compact identifier newtypes for nodes, edges and parts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (vertex) in a [`Graph`](crate::Graph).
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an undirected edge in a [`Graph`](crate::Graph).
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`. The id is
/// shared by both directions of the edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// Identifier of a part `P_i` in a partition of the vertex set
/// (Definition 2.1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartId(pub u32);

macro_rules! impl_id {
    ($t:ident, $prefix:literal) => {
        impl $t {
            /// Returns the id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `i` does not fit in `u32`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $t(u32::try_from(i).expect("id index exceeds u32::MAX"))
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$t> for usize {
            fn from(id: $t) -> usize {
                id.index()
            }
        }
    };
}

impl_id!(NodeId, "n");
impl_id!(EdgeId, "e");
impl_id!(PartId, "P");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let n = NodeId::from_index(42);
        assert_eq!(n, NodeId(42));
        assert_eq!(n.index(), 42);
        assert_eq!(usize::from(n), 42);
    }

    #[test]
    fn debug_prefixes_distinguish_kinds() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId(4)), "e4");
        assert_eq!(format!("{:?}", PartId(5)), "P5");
        assert_eq!(format!("{}", NodeId(3)), "3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }
}
