//! Exhaustive minor-density computation for tiny graphs.

use crate::{components, Graph, NodeId};

/// Maximum host size accepted by [`exact_minor_density_small`].
pub const EXACT_LIMIT: usize = 10;

/// Computes `δ(G)` exactly by enumerating all ways to group vertices into
/// disjoint branch sets (plus an "unused" class), keeping only groupings
/// whose branch sets induce connected subgraphs.
///
/// Edge deletions never increase density, so enumerating contractions and
/// vertex deletions suffices. Runs in super-exponential time — restricted to
/// `n <= 10`; used to validate the heuristics in tests.
///
/// # Panics
///
/// Panics if `g.num_nodes() > EXACT_LIMIT`.
pub fn exact_minor_density_small(g: &Graph) -> f64 {
    let n = g.num_nodes();
    assert!(
        n <= EXACT_LIMIT,
        "exact minor density limited to {EXACT_LIMIT} nodes"
    );
    if n == 0 {
        return 0.0;
    }
    let mut assignment: Vec<i32> = vec![-1; n]; // -1 = unused, else group id
    let mut best = 0.0f64;
    recurse(g, 0, 0, &mut assignment, &mut best);
    best
}

fn recurse(g: &Graph, v: usize, groups: usize, assignment: &mut Vec<i32>, best: &mut f64) {
    let n = g.num_nodes();
    if v == n {
        if groups == 0 {
            return;
        }
        // Connectivity check per group.
        let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); groups];
        for (node, &a) in assignment.iter().enumerate() {
            if a >= 0 {
                sets[a as usize].push(NodeId(node as u32));
            }
        }
        for s in &sets {
            if s.is_empty() || !components::induces_connected(g, s) {
                return;
            }
        }
        // Count distinct inter-group edges.
        let mut pairs = std::collections::HashSet::new();
        for er in g.edges() {
            let (a, b) = (assignment[er.u.index()], assignment[er.v.index()]);
            if a >= 0 && b >= 0 && a != b {
                pairs.insert((a.min(b), a.max(b)));
            }
        }
        let d = pairs.len() as f64 / groups as f64;
        if d > *best {
            *best = d;
        }
        return;
    }
    // Unused.
    assignment[v] = -1;
    recurse(g, v + 1, groups, assignment, best);
    // Existing groups (restricted growth keeps enumeration canonical).
    for gid in 0..groups {
        assignment[v] = gid as i32;
        recurse(g, v + 1, groups, assignment, best);
    }
    // New group.
    assignment[v] = groups as i32;
    recurse(g, v + 1, groups + 1, assignment, best);
    assignment[v] = -1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::minor::greedy_contraction_density;

    #[test]
    fn exact_on_cliques() {
        assert!((exact_minor_density_small(&gen::complete(4)) - 1.5).abs() < 1e-12);
        assert!((exact_minor_density_small(&gen::complete(5)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_on_sparse_families() {
        assert!((exact_minor_density_small(&gen::path(6)) - 5.0 / 6.0).abs() < 1e-12);
        assert!((exact_minor_density_small(&gen::cycle(6)) - 1.0).abs() < 1e-12);
        // C_6 contracts to C_3, density still 1 — no denser minor exists.
    }

    #[test]
    fn exact_on_small_grid() {
        // 2x3 grid: contracting the two middle nodes gives K_4 minus an edge
        // plus...; best known minor density of the 2x3 grid is 7/6 (itself).
        let g = gen::grid(2, 3);
        let d = exact_minor_density_small(&g);
        assert!(d >= 7.0 / 6.0 - 1e-12);
        assert!(d < 3.0); // planar
    }

    #[test]
    fn greedy_never_exceeds_exact() {
        for g in [
            gen::complete(5),
            gen::grid(2, 4),
            gen::cycle(7),
            gen::wheel(8),
            gen::star(9),
        ] {
            let exact = exact_minor_density_small(&g);
            let greedy = greedy_contraction_density(&g, None).density;
            assert!(
                greedy <= exact + 1e-9,
                "greedy {greedy} exceeded exact {exact}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn rejects_large_graphs() {
        exact_minor_density_small(&gen::grid(4, 4));
    }

    #[test]
    fn empty_graph() {
        assert_eq!(exact_minor_density_small(&Graph::from_edges(0, [])), 0.0);
    }

    use crate::Graph;
}
