//! Contraction of node sets into supernodes.

use crate::{Graph, GraphBuilder, NodeId};
use std::collections::HashSet;

/// Result of [`contract_parts`]: the contracted simple graph and the
/// node-to-supernode mapping.
#[derive(Clone, Debug)]
pub struct ContractedGraph {
    /// The contracted graph (parallel edges merged, self-loops dropped).
    pub graph: Graph,
    /// `supernode_of[v]` = supernode index of original node `v`.
    pub supernode_of: Vec<u32>,
    /// Original nodes of each supernode.
    pub members: Vec<Vec<NodeId>>,
}

/// Contracts each set in `sets` to a single supernode; nodes not mentioned
/// become their own singleton supernodes.
///
/// Sets need not induce connected subgraphs — for a *minor* use connected
/// sets (see [`verify_minor`](crate::minor::verify_minor)); for general
/// quotient graphs any disjoint sets work.
///
/// # Panics
///
/// Panics if sets overlap or contain out-of-range nodes.
pub fn contract_parts(g: &Graph, sets: &[Vec<NodeId>]) -> ContractedGraph {
    let n = g.num_nodes();
    let mut supernode_of = vec![u32::MAX; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    for set in sets {
        let id = members.len() as u32;
        let mut m = Vec::with_capacity(set.len());
        for &v in set {
            assert!(v.index() < n, "{v:?} out of range");
            assert!(
                supernode_of[v.index()] == u32::MAX,
                "{v:?} occurs in two sets"
            );
            supernode_of[v.index()] = id;
            m.push(v);
        }
        members.push(m);
    }
    for v in g.nodes() {
        if supernode_of[v.index()] == u32::MAX {
            supernode_of[v.index()] = members.len() as u32;
            members.push(vec![v]);
        }
    }
    let k = members.len();
    let mut b = GraphBuilder::new(k);
    let mut seen = HashSet::new();
    for er in g.edges() {
        let (a, b2) = (supernode_of[er.u.index()], supernode_of[er.v.index()]);
        if a == b2 {
            continue;
        }
        let key = (a.min(b2), a.max(b2));
        if seen.insert(key) {
            b.add_edge(NodeId(key.0), NodeId(key.1));
        }
    }
    ContractedGraph {
        graph: b.build(),
        supernode_of,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn contracting_grid_columns_gives_path() {
        let g = gen::grid(3, 4);
        let cols: Vec<Vec<NodeId>> = (0..4)
            .map(|c| (0..3).map(|r| NodeId((r * 4 + c) as u32)).collect())
            .collect();
        let cg = contract_parts(&g, &cols);
        assert_eq!(cg.graph.num_nodes(), 4);
        assert_eq!(cg.graph.num_edges(), 3); // a path of supernodes
    }

    #[test]
    fn unmentioned_nodes_become_singletons() {
        let g = gen::path(4);
        let cg = contract_parts(&g, &[vec![NodeId(1), NodeId(2)]]);
        assert_eq!(cg.graph.num_nodes(), 3);
        assert_eq!(cg.graph.num_edges(), 2);
        assert_eq!(cg.members[0], vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "two sets")]
    fn overlapping_sets_rejected() {
        let g = gen::path(3);
        contract_parts(&g, &[vec![NodeId(0), NodeId(1)], vec![NodeId(1)]]);
    }

    #[test]
    fn parallel_edges_merged() {
        let g = gen::cycle(4);
        let cg = contract_parts(
            &g,
            &[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
        );
        assert_eq!(cg.graph.num_nodes(), 2);
        assert_eq!(cg.graph.num_edges(), 1); // two parallel edges merged
    }
}
