//! Clique-minor order bounds from minor density (Lemma 1.1 of the paper,
//! due to Thomason [Tho01]).
//!
//! The paper recalls that minor density and the largest clique-minor order
//! `r(G) = max { r : K_r is a minor of G }` agree up to `Õ(1)` factors:
//!
//! ```text
//! (r(G) - 1) / 2  <=  δ(G)  <=  8·r(G)·√(log₂ r(G)).
//! ```
//!
//! These helpers convert certified density bounds into clique-minor-order
//! bounds, letting experiments report "contains a K_r minor" /
//! "K_r-minor-free" statements alongside densities.

/// The largest `r` such that **every** graph with minor density at least
/// `density` is guaranteed to contain a `K_r` minor, via the upper half of
/// Lemma 1.1 (`δ <= 8r√(log₂ r)` forces `r` up once δ is large).
///
/// Returns 1 for densities too small to force an edge (`K_2`).
pub fn guaranteed_clique_minor_order(density: f64) -> u32 {
    if density <= 0.0 {
        return 1;
    }
    // δ <= 8r√(log₂ r) forces r(G) to be at least the smallest order whose
    // cap reaches the certified density.
    let mut r = 2u32;
    loop {
        let cap = 8.0 * f64::from(r) * f64::from(r).log2().max(0.0).sqrt();
        if cap >= density {
            return r;
        }
        r += 1;
    }
}

/// The largest clique-minor order possible for a graph whose minor density
/// is at most `density_upper`, via the lower half of Lemma 1.1
/// (`(r-1)/2 <= δ` gives `r <= 2δ + 1`).
pub fn max_clique_minor_order(density_upper: f64) -> u32 {
    if density_upper <= 0.0 {
        return 1;
    }
    (2.0 * density_upper + 1.0).floor() as u32
}

/// Whether a graph with minor density below `density_upper` certainly
/// excludes `K_r` as a minor.
pub fn excludes_clique_minor(density_upper: f64, r: u32) -> bool {
    r > max_clique_minor_order(density_upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, minor};

    #[test]
    fn clique_bounds_are_consistent_on_cliques() {
        // K_r itself: δ = (r-1)/2, so the upper conversion is exact.
        for r in 2u32..12 {
            let delta = f64::from(r - 1) / 2.0;
            assert_eq!(max_clique_minor_order(delta), r);
            assert!(guaranteed_clique_minor_order(delta) <= r);
        }
    }

    #[test]
    fn guaranteed_order_grows_with_density() {
        let small = guaranteed_clique_minor_order(3.0);
        let large = guaranteed_clique_minor_order(300.0);
        assert!(small >= 1);
        assert!(large > small);
        // The bound is the inverse of 8r√log r: check it round-trips.
        let cap = 8.0 * f64::from(large) * f64::from(large).log2().sqrt();
        assert!(cap >= 300.0 || large == 1);
    }

    #[test]
    fn planar_graphs_exclude_k7() {
        // Planar: δ < 3, so r <= 2·3 + 1 = 7 and K_8 is excluded.
        assert!(excludes_clique_minor(3.0, 8));
        assert!(!excludes_clique_minor(3.0, 5)); // K_5 not ruled out by density alone
    }

    #[test]
    fn certified_density_gives_witnessed_clique_bound() {
        // grid_of_cliques contains K_8, so its certified density must allow
        // an order-8 clique minor.
        let g = gen::grid_of_cliques(2, 2, 8);
        let est = minor::greedy_contraction_density(&g, None);
        assert!(max_clique_minor_order(est.density + 0.5) >= 8);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(guaranteed_clique_minor_order(0.0), 1);
        assert_eq!(max_clique_minor_order(-1.0), 1);
    }
}
