//! Minor witnesses (branch-set embeddings) and their verification.

use crate::{components, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A certified minor of a host graph: disjoint connected branch sets plus
/// the minor's edges between them.
///
/// This is the "mapping" formulation of minors used in Section 1.1 of the
/// paper: `H` is a minor of `G` iff each node of `H` maps to a disjoint
/// connected subset of `V(G)` and each edge of `H` is realized by some
/// `G`-edge between the corresponding subsets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinorWitness {
    /// `branch_sets[i]` = the vertices of `G` contracted into minor node `i`.
    pub branch_sets: Vec<Vec<NodeId>>,
    /// Minor edges as index pairs into `branch_sets` (unordered, no
    /// duplicates).
    pub edges: Vec<(usize, usize)>,
}

impl MinorWitness {
    /// Number of minor nodes.
    pub fn num_nodes(&self) -> usize {
        self.branch_sets.len()
    }

    /// Number of minor edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The minor's density `|E'| / |V'|` — a lower bound on `δ(G)` once the
    /// witness passes [`verify_minor`]. Returns 0 for an empty witness.
    pub fn density(&self) -> f64 {
        if self.branch_sets.is_empty() {
            0.0
        } else {
            self.edges.len() as f64 / self.branch_sets.len() as f64
        }
    }
}

/// Ways a [`MinorWitness`] can fail verification against a host graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MinorVerifyError {
    /// A branch set is empty.
    EmptyBranchSet(usize),
    /// A node occurs in two branch sets (or twice in one).
    Overlap(NodeId),
    /// A branch set does not induce a connected subgraph.
    Disconnected(usize),
    /// A minor edge references a branch-set index out of range.
    BadEdgeIndex(usize, usize),
    /// A minor edge is a self-loop.
    SelfLoop(usize),
    /// The same minor edge appears twice.
    DuplicateEdge(usize, usize),
    /// No host edge connects the two branch sets of a minor edge.
    Unrealized(usize, usize),
    /// A branch set references a node outside the host graph.
    NodeOutOfRange(NodeId),
}

impl fmt::Display for MinorVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyBranchSet(i) => write!(f, "branch set {i} is empty"),
            Self::Overlap(v) => write!(f, "node {v:?} occurs in two branch sets"),
            Self::Disconnected(i) => write!(f, "branch set {i} is not connected"),
            Self::BadEdgeIndex(a, b) => write!(f, "edge ({a}, {b}) out of range"),
            Self::SelfLoop(i) => write!(f, "self-loop at minor node {i}"),
            Self::DuplicateEdge(a, b) => write!(f, "duplicate minor edge ({a}, {b})"),
            Self::Unrealized(a, b) => {
                write!(f, "no host edge between branch sets {a} and {b}")
            }
            Self::NodeOutOfRange(v) => write!(f, "node {v:?} outside host graph"),
        }
    }
}

impl std::error::Error for MinorVerifyError {}

/// Verifies that `w` is a valid minor of `g`.
///
/// Checks, in order: branch sets are non-empty, within range, disjoint, and
/// connected; minor edges are in-range, loop-free, duplicate-free, and
/// realized by host edges.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn verify_minor(g: &Graph, w: &MinorWitness) -> Result<(), MinorVerifyError> {
    let n = g.num_nodes();
    let mut owner: Vec<Option<u32>> = vec![None; n];
    for (i, set) in w.branch_sets.iter().enumerate() {
        if set.is_empty() {
            return Err(MinorVerifyError::EmptyBranchSet(i));
        }
        for &v in set {
            if v.index() >= n {
                return Err(MinorVerifyError::NodeOutOfRange(v));
            }
            if owner[v.index()].is_some() {
                return Err(MinorVerifyError::Overlap(v));
            }
            owner[v.index()] = Some(i as u32);
        }
        if !components::induces_connected(g, set) {
            return Err(MinorVerifyError::Disconnected(i));
        }
    }
    let mut seen = HashSet::new();
    for &(a, b) in &w.edges {
        if a >= w.branch_sets.len() || b >= w.branch_sets.len() {
            return Err(MinorVerifyError::BadEdgeIndex(a, b));
        }
        if a == b {
            return Err(MinorVerifyError::SelfLoop(a));
        }
        let key = (a.min(b), a.max(b));
        if !seen.insert(key) {
            return Err(MinorVerifyError::DuplicateEdge(key.0, key.1));
        }
        let realized = w.branch_sets[a].iter().any(|&u| {
            g.heads(u)
                .iter()
                .any(|&w| owner[w.index()] == Some(b as u32))
        });
        if !realized {
            return Err(MinorVerifyError::Unrealized(key.0, key.1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn valid_witness_passes() {
        // Contract the 2x3 grid's columns into a triangle-with-multiplicity.
        let g = gen::grid(2, 3);
        let w = MinorWitness {
            branch_sets: vec![
                vec![NodeId(0), NodeId(3)],
                vec![NodeId(1), NodeId(4)],
                vec![NodeId(2), NodeId(5)],
            ],
            edges: vec![(0, 1), (1, 2)],
        };
        assert_eq!(verify_minor(&g, &w), Ok(()));
        assert!((w.density() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_detected() {
        let g = gen::path(3);
        let w = MinorWitness {
            branch_sets: vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1)]],
            edges: vec![],
        };
        assert_eq!(
            verify_minor(&g, &w),
            Err(MinorVerifyError::Overlap(NodeId(1)))
        );
    }

    #[test]
    fn disconnected_branch_set_detected() {
        let g = gen::path(3);
        let w = MinorWitness {
            branch_sets: vec![vec![NodeId(0), NodeId(2)]],
            edges: vec![],
        };
        assert_eq!(verify_minor(&g, &w), Err(MinorVerifyError::Disconnected(0)));
    }

    #[test]
    fn unrealized_edge_detected() {
        let g = gen::path(4);
        let w = MinorWitness {
            branch_sets: vec![vec![NodeId(0)], vec![NodeId(3)]],
            edges: vec![(0, 1)],
        };
        assert_eq!(
            verify_minor(&g, &w),
            Err(MinorVerifyError::Unrealized(0, 1))
        );
    }

    #[test]
    fn duplicate_and_loop_detected() {
        let g = gen::path(2);
        let loopy = MinorWitness {
            branch_sets: vec![vec![NodeId(0)]],
            edges: vec![(0, 0)],
        };
        assert_eq!(verify_minor(&g, &loopy), Err(MinorVerifyError::SelfLoop(0)));
        let dup = MinorWitness {
            branch_sets: vec![vec![NodeId(0)], vec![NodeId(1)]],
            edges: vec![(0, 1), (1, 0)],
        };
        assert_eq!(
            verify_minor(&g, &dup),
            Err(MinorVerifyError::DuplicateEdge(0, 1))
        );
    }

    #[test]
    fn empty_witness_is_valid() {
        let g = gen::path(2);
        let w = MinorWitness {
            branch_sets: vec![],
            edges: vec![],
        };
        assert_eq!(verify_minor(&g, &w), Ok(()));
        assert_eq!(w.density(), 0.0);
    }
}
