//! Minor-density lower bounds: degeneracy and greedy contraction.

use crate::minor::MinorWitness;
use crate::{Graph, NodeId};
use std::collections::HashSet;

/// The degeneracy of `g`: the largest minimum degree over all subgraphs,
/// computed by iterated minimum-degree removal.
///
/// Since subgraphs are minors, `δ(G) >= degeneracy(G) / 2` (a graph of
/// degeneracy `d` contains a subgraph with at least `d/2 · n'` edges).
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut deg: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let maxd = g.max_degree();
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); maxd + 1];
    for v in g.nodes() {
        buckets[deg[v.index()]].push(v.0);
    }
    let mut removed = vec![false; n];
    let mut degeneracy = 0;
    let mut cur = 0usize;
    for _ in 0..n {
        // Find the smallest non-empty bucket with a live entry.
        while cur < buckets.len() {
            // Entries may be stale (degree decreased since insertion).
            match buckets[cur].pop() {
                Some(v) if !removed[v as usize] && deg[v as usize] == cur => {
                    let v = v as usize;
                    removed[v] = true;
                    degeneracy = degeneracy.max(cur);
                    for &h in g.heads(NodeId(v as u32)) {
                        let u = h.index();
                        if !removed[u] {
                            deg[u] -= 1;
                            buckets[deg[u]].push(u as u32);
                            if deg[u] < cur {
                                cur = deg[u];
                            }
                        }
                    }
                    break;
                }
                Some(_) => continue, // stale entry
                None => {
                    cur += 1;
                    continue;
                }
            }
        }
    }
    degeneracy
}

/// A certified minor-density lower bound: the best density seen and the
/// witness realizing it.
#[derive(Clone, Debug)]
pub struct DensityEstimate {
    /// The witness's density `|E'|/|V'|` — a lower bound on `δ(G)`.
    pub density: f64,
    /// The minor achieving [`density`](Self::density); passes
    /// [`verify_minor`](crate::minor::verify_minor).
    pub witness: MinorWitness,
}

/// Greedy contraction heuristic for lower-bounding `δ(G)`.
///
/// Repeatedly deletes isolated supernodes and contracts the edge at the
/// current minimum-degree supernode that destroys the fewest parallel edges
/// (fewest common neighbors), tracking the densest intermediate minor. The
/// returned witness always verifies; its density is `>= m/n`.
///
/// `max_steps` caps the number of contraction/deletion steps (defaults to
/// `n`, i.e. run to exhaustion).
pub fn greedy_contraction_density(g: &Graph, max_steps: Option<usize>) -> DensityEstimate {
    let steps_cap = max_steps.unwrap_or(g.num_nodes());
    let (best_step, _best_density) = run_greedy(g, steps_cap, None);
    let (_, density) = run_greedy(g, steps_cap, Some(best_step));
    // Second pass stops at `best_step` and returns the snapshot.
    let witness = density.expect("replay must produce a witness");
    let d = witness.density();
    DensityEstimate {
        density: d,
        witness,
    }
}

/// Shared greedy loop. With `snapshot_at = None` returns
/// `(argmax step, max density)`; with `Some(s)` returns the witness at step
/// `s` in the second tuple slot.
fn run_greedy(
    g: &Graph,
    steps_cap: usize,
    snapshot_at: Option<usize>,
) -> (usize, Option<MinorWitness>) {
    let n = g.num_nodes();
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    for er in g.edges() {
        adj[er.u.index()].insert(er.v.0);
        adj[er.v.index()].insert(er.u.0);
    }
    let mut alive: Vec<bool> = vec![true; n];
    let mut members: Vec<Vec<NodeId>> = g.nodes().map(|v| vec![v]).collect();
    let mut n_alive = n;
    let mut m_alive = g.num_edges();

    let mut best_step = 0usize;
    let mut best = if n_alive > 0 {
        m_alive as f64 / n_alive as f64
    } else {
        0.0
    };
    if snapshot_at == Some(0) {
        return (0, Some(snapshot(&alive, &members, &adj)));
    }

    for step in 1..=steps_cap {
        if n_alive <= 1 {
            break;
        }
        // Pick the live supernode of minimum degree (ties: smallest id).
        let v = match (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| (adj[v].len(), v))
        {
            Some(v) => v,
            None => break,
        };
        if adj[v].is_empty() {
            // Deleting an isolated supernode can only raise density.
            alive[v] = false;
            n_alive -= 1;
        } else {
            // Contract v into the neighbor sharing the fewest common
            // neighbors (destroys the fewest edges).
            let u = adj[v]
                .iter()
                .map(|&u| u as usize)
                .min_by_key(|&u| (adj[v].intersection(&adj[u]).count(), u))
                .expect("non-empty adjacency");
            let common: Vec<u32> = adj[v].intersection(&adj[u]).copied().collect();
            m_alive -= 1 + common.len();
            // Move v's edges to u.
            let v_nbrs: Vec<u32> = adj[v].iter().copied().collect();
            for w in v_nbrs {
                let w = w as usize;
                adj[w].remove(&(v as u32));
                if w != u {
                    adj[w].insert(u as u32);
                    adj[u].insert(w as u32);
                }
            }
            adj[u].remove(&(v as u32));
            adj[v].clear();
            alive[v] = false;
            n_alive -= 1;
            let moved = std::mem::take(&mut members[v]);
            members[u].extend(moved);
        }
        let d = m_alive as f64 / n_alive as f64;
        if d > best {
            best = d;
            best_step = step;
        }
        if snapshot_at == Some(step) {
            return (step, Some(snapshot(&alive, &members, &adj)));
        }
    }
    (best_step, None)
}

fn snapshot(alive: &[bool], members: &[Vec<NodeId>], adj: &[HashSet<u32>]) -> MinorWitness {
    let mut index_of = vec![usize::MAX; alive.len()];
    let mut branch_sets = Vec::new();
    for (v, &a) in alive.iter().enumerate() {
        if a {
            index_of[v] = branch_sets.len();
            branch_sets.push(members[v].clone());
        }
    }
    let mut edges = Vec::new();
    for (v, &a) in alive.iter().enumerate() {
        if !a {
            continue;
        }
        for &u in &adj[v] {
            let u = u as usize;
            if v < u {
                edges.push((index_of[v], index_of[u]));
            }
        }
    }
    MinorWitness { branch_sets, edges }
}

/// The best certified minor-density lower bound available cheaply:
/// `max(greedy contraction, degeneracy/2)`.
pub fn density_lower_bound(g: &Graph) -> f64 {
    let greedy = greedy_contraction_density(g, None).density;
    greedy.max(degeneracy(g) as f64 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::minor::verify_minor;

    #[test]
    fn degeneracy_of_basic_families() {
        assert_eq!(degeneracy(&gen::path(10)), 1);
        assert_eq!(degeneracy(&gen::cycle(10)), 2);
        assert_eq!(degeneracy(&gen::complete(5)), 4);
        assert_eq!(degeneracy(&gen::grid(4, 4)), 2);
        assert_eq!(degeneracy(&gen::star(10)), 1);
        assert_eq!(degeneracy(&Graph::from_edges(0, [])), 0);
    }

    use crate::Graph;

    #[test]
    fn greedy_witness_verifies_and_beats_edge_density() {
        for g in [gen::grid(5, 5), gen::complete(6), gen::torus(4, 4)] {
            let est = greedy_contraction_density(&g, None);
            assert!(verify_minor(&g, &est.witness).is_ok());
            assert!(est.density >= g.density() - 1e-9);
        }
    }

    #[test]
    fn clique_density_is_found_exactly() {
        let g = gen::complete(7);
        let est = greedy_contraction_density(&g, None);
        assert!((est.density - 3.0).abs() < 1e-9); // (7-1)/2
    }

    #[test]
    fn grid_of_cliques_detects_the_clique() {
        let g = gen::grid_of_cliques(3, 3, 6);
        let est = greedy_contraction_density(&g, None);
        assert!(est.density >= 2.5); // K_6 density (6-1)/2
    }

    #[test]
    fn lower_bound_on_planar_graph_respects_three() {
        // Planar graphs have δ < 3, so certified lower bounds must too.
        let g = gen::grid(8, 8);
        assert!(density_lower_bound(&g) < 3.0);
    }

    #[test]
    fn max_steps_zero_returns_initial_density() {
        let g = gen::cycle(6);
        let est = greedy_contraction_density(&g, Some(0));
        assert!((est.density - 1.0).abs() < 1e-12);
        assert_eq!(est.witness.num_nodes(), 6);
    }
}
