//! Graph minors: witnesses, verification, contraction, and minor-density
//! estimation.
//!
//! The paper's central parameter is the minor density
//! `δ(G) = max { |E'|/|V'| : H = (V', E') is a minor of G }`. Computing it
//! exactly is NP-hard, so this module provides:
//!
//! * [`MinorWitness`] + [`verify_minor`]: certified *lower* bounds — a
//!   concrete minor embedding that can be checked in polynomial time (this is
//!   the certificate format produced by the paper's Case (II) extraction),
//! * [`greedy_contraction_density`]: a contraction heuristic producing good
//!   witnesses in practice,
//! * [`degeneracy`]-based and edge-density lower bounds,
//! * [`exact_minor_density_small`]: exhaustive search for tiny graphs, used
//!   to validate the heuristics in tests.

mod clique;
mod contract;
mod density;
mod exact;
mod witness;

pub use clique::{excludes_clique_minor, guaranteed_clique_minor_order, max_clique_minor_order};
pub use contract::{contract_parts, ContractedGraph};
pub use density::{degeneracy, density_lower_bound, greedy_contraction_density, DensityEstimate};
pub use exact::exact_minor_density_small;
pub use witness::{verify_minor, MinorVerifyError, MinorWitness};
