//! Graph substrate for the low-congestion-shortcuts workspace.
//!
//! This crate provides everything the shortcut machinery of
//! [Ghaffari & Haeupler, PODC 2021] needs from a graph library:
//!
//! * compact undirected graphs in CSR form ([`Graph`], [`GraphBuilder`]),
//!   with stable [`NodeId`]/[`EdgeId`] addressing,
//! * traversals and structure queries ([`bfs`], [`components`], [`diameter`]),
//! * rooted spanning trees with the tree-edge-by-child addressing the paper
//!   uses (`v_e` = deeper endpoint of tree edge `e`) ([`RootedTree`]),
//! * graph-family generators with known minor density ([`gen`]),
//! * a flat binary on-disk format (`.lcsg`) with a bulk-read loader for
//!   million-node instances ([`io`]),
//! * minors: contraction, witnesses, verification and density estimation
//!   ([`minor`]).
//!
//! # Example
//!
//! ```
//! use lcs_graph::{gen, bfs, NodeId};
//!
//! let g = gen::grid(4, 5);
//! assert_eq!(g.num_nodes(), 20);
//! let tree = bfs::bfs_tree(&g, NodeId(0));
//! assert!(tree.depth_of_tree() as usize <= g.num_nodes());
//! ```
//!
//! [Ghaffari & Haeupler, PODC 2021]: https://arxiv.org/abs/2008.03091

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod graph;
mod ids;
mod union_find;

pub mod bfs;
pub mod components;
pub mod diameter;
pub mod gen;
pub mod io;
pub mod minor;
pub mod tree;
pub mod weights;

pub use builder::{check_csr_capacity, CapacityError, GraphBuilder, MAX_EDGES, MAX_NODES};
pub use graph::{EdgeRef, Graph, Neighbor, Neighbors};
pub use ids::{EdgeId, NodeId, PartId};
pub use tree::RootedTree;
pub use union_find::UnionFind;
