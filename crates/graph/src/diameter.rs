//! Diameter and eccentricity computation.
//!
//! Shortcut dilation (Definition 2.2) is a diameter of an auxiliary subgraph,
//! so quality measurement needs both exact diameters (small graphs) and
//! cheap two-sided bounds (large graphs).

use crate::{bfs, Graph, NodeId};

/// A two-sided diameter estimate: `lower <= diameter <= upper`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiameterBounds {
    /// A realized path length (double-sweep lower bound).
    pub lower: u32,
    /// An upper bound (2 × eccentricity of the second sweep's start).
    pub upper: u32,
}

impl DiameterBounds {
    /// Whether the bounds pin the diameter exactly.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// Exact diameter of the component containing `start` via BFS from every node
/// of that component. `O(n·m)` — intended for verification and small graphs.
///
/// Returns 0 for a single-node component.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn exact_diameter_of_component(g: &Graph, start: NodeId) -> u32 {
    let comp = bfs::bfs(g, start);
    let mut best = 0;
    for &v in &comp.order {
        best = best.max(bfs::bfs(g, v).eccentricity());
    }
    best
}

/// Exact diameter of a connected graph.
///
/// # Panics
///
/// Panics if `g` is disconnected or empty.
pub fn exact_diameter(g: &Graph) -> u32 {
    assert!(
        g.num_nodes() > 0,
        "diameter of the empty graph is undefined"
    );
    let comp = bfs::bfs(g, NodeId(0));
    assert!(
        comp.order.len() == g.num_nodes(),
        "graph must be connected for exact_diameter"
    );
    exact_diameter_of_component(g, NodeId(0))
}

/// Double-sweep bounds on the diameter of `start`'s component: BFS from
/// `start` to find a far node `a`, BFS from `a` to find `b`; then
/// `dist(a, b) <= diam <= 2·ecc(a)`.
pub fn diameter_bounds(g: &Graph, start: NodeId) -> DiameterBounds {
    let first = bfs::bfs(g, start);
    let Some((a, _)) = first.farthest() else {
        return DiameterBounds { lower: 0, upper: 0 };
    };
    let second = bfs::bfs(g, a);
    let ecc = second.eccentricity();
    DiameterBounds {
        lower: ecc,
        upper: 2 * ecc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_diameter() {
        let g = gen::path(7);
        assert_eq!(exact_diameter(&g), 6);
        let b = diameter_bounds(&g, NodeId(3));
        assert_eq!(b.lower, 6); // double sweep is exact on trees
        assert!(b.upper >= 6);
    }

    #[test]
    fn cycle_diameter() {
        let g = gen::cycle(8);
        assert_eq!(exact_diameter(&g), 4);
        let b = diameter_bounds(&g, NodeId(0));
        assert!(b.lower <= 4 && 4 <= b.upper);
    }

    #[test]
    fn grid_diameter() {
        let g = gen::grid(4, 6);
        assert_eq!(exact_diameter(&g), 3 + 5);
    }

    #[test]
    fn single_node() {
        let g = Graph::from_edges(1, []);
        assert_eq!(exact_diameter(&g), 0);
        let b = diameter_bounds(&g, NodeId(0));
        assert!(b.is_exact());
        assert_eq!(b.lower, 0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn exact_diameter_rejects_disconnected() {
        let g = Graph::from_edges(3, [(0, 1)]);
        exact_diameter(&g);
    }
}
