//! Disjoint-set forest with union by rank and path compression.

/// A union-find structure over `0..n`.
///
/// Used by Kruskal's MST, connectivity checks, and contraction bookkeeping.
///
/// # Example
///
/// ```
/// use lcs_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0));
/// assert!(uf.connected(0, 1));
/// assert_eq!(uf.num_sets(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Merges the sets of `a` and `b`. Returns `true` iff they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_reduce_set_count() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(1, 4));
    }

    #[test]
    fn find_is_idempotent() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 2);
        let r = uf.find(0);
        assert_eq!(uf.find(2), r);
        assert_eq!(uf.find(r), r);
    }

    #[test]
    fn empty_is_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
