//! Edge weights, kept separate from the topology.
//!
//! Graphs in this workspace are unweighted topologies (the CONGEST network);
//! algorithms that need weights (MST, min-cut packing loads) carry an
//! [`EdgeWeights`] alongside the [`Graph`].

use crate::{EdgeId, Graph};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sparse weight update referenced an edge the weight vector does not
/// have. Returned by [`EdgeWeights::try_update`]; the vector is unchanged
/// when this is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightUpdateError {
    /// The offending edge id.
    pub edge: EdgeId,
    /// Number of weighted edges (valid ids are `0..num_edges`).
    pub num_edges: usize,
}

impl fmt::Display for WeightUpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge {:?} out of range — {} weighted edges",
            self.edge, self.num_edges
        )
    }
}

impl std::error::Error for WeightUpdateError {}

/// Integer weights indexed by [`EdgeId`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeWeights(Vec<u64>);

impl EdgeWeights {
    /// Uniform weight 1 on every edge.
    pub fn unit(g: &Graph) -> Self {
        EdgeWeights(vec![1; g.num_edges()])
    }

    /// Weights from an explicit vector.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `g.num_edges()`.
    pub fn from_vec(g: &Graph, w: Vec<u64>) -> Self {
        assert_eq!(w.len(), g.num_edges(), "one weight per edge required");
        EdgeWeights(w)
    }

    /// Independent uniform random weights in `[1, max_weight]`.
    ///
    /// Distinct-ish random weights make the MST unique with high
    /// probability, which simplifies cross-checking distributed against
    /// centralized results.
    ///
    /// # Panics
    ///
    /// Panics if `max_weight == 0`.
    pub fn random(g: &Graph, max_weight: u64, rng: &mut impl Rng) -> Self {
        assert!(max_weight > 0, "max_weight must be positive");
        EdgeWeights(
            (0..g.num_edges())
                .map(|_| rng.gen_range(1..=max_weight))
                .collect(),
        )
    }

    /// Unique weights: a random permutation of `1..=m`. Guarantees a unique
    /// MST.
    pub fn random_unique(g: &Graph, rng: &mut impl Rng) -> Self {
        use rand::seq::SliceRandom;
        let mut w: Vec<u64> = (1..=g.num_edges() as u64).collect();
        w.shuffle(rng);
        EdgeWeights(w)
    }

    /// Weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.0[e.index()]
    }

    /// Mutable access, e.g. for packing-load updates.
    #[inline]
    pub fn weight_mut(&mut self, e: EdgeId) -> &mut u64 {
        &mut self.0[e.index()]
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Applies sparse `(edge, new_weight)` updates — the churn primitive
    /// behind `ShortcutSession::update_weights`.
    ///
    /// # Panics
    ///
    /// Panics if an edge id is out of range. Use
    /// [`try_update`](Self::try_update) for the fallible form.
    pub fn update(&mut self, changes: &[(EdgeId, u64)]) {
        self.try_update(changes).unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`update`](Self::update) with validation instead of a panic: every
    /// edge id is checked **before** anything is written, so on `Err` the
    /// weights are exactly as they were (a failed update can be reported —
    /// e.g. as an HTTP 422 — and the serving state stays consistent).
    pub fn try_update(&mut self, changes: &[(EdgeId, u64)]) -> Result<(), WeightUpdateError> {
        let n = self.0.len();
        if let Some(&(edge, _)) = changes.iter().find(|(e, _)| e.index() >= n) {
            return Err(WeightUpdateError { edge, num_edges: n });
        }
        for &(e, w) in changes {
            self.0[e.index()] = w;
        }
        Ok(())
    }

    /// Total weight of an edge set.
    pub fn total(&self, edges: impl IntoIterator<Item = EdgeId>) -> u64 {
        edges.into_iter().map(|e| self.weight(e)).sum()
    }

    /// Iterates over `(EdgeId, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, u64)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &w)| (EdgeId(i as u32), w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn unit_weights() {
        let g = gen::path(4);
        let w = EdgeWeights::unit(&g);
        assert_eq!(w.len(), 3);
        assert_eq!(w.total(g.edges().map(|e| e.id)), 3);
    }

    #[test]
    fn unique_weights_are_a_permutation() {
        let g = gen::grid(3, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        let w = EdgeWeights::random_unique(&g, &mut rng);
        let mut vals: Vec<u64> = (0..w.len()).map(|i| w.weight(EdgeId(i as u32))).collect();
        vals.sort_unstable();
        assert_eq!(vals, (1..=w.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn mutation() {
        let g = gen::path(3);
        let mut w = EdgeWeights::unit(&g);
        *w.weight_mut(EdgeId(0)) = 10;
        assert_eq!(w.weight(EdgeId(0)), 10);
    }

    #[test]
    fn sparse_update() {
        let g = gen::path(4);
        let mut w = EdgeWeights::unit(&g);
        w.update(&[(EdgeId(0), 7), (EdgeId(2), 3)]);
        assert_eq!(w.weight(EdgeId(0)), 7);
        assert_eq!(w.weight(EdgeId(1)), 1);
        assert_eq!(w.weight(EdgeId(2)), 3);
        w.update(&[]);
        assert_eq!(w.total(g.edges().map(|e| e.id)), 11);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn from_vec_length_checked() {
        let g = gen::path(3);
        EdgeWeights::from_vec(&g, vec![1]);
    }

    #[test]
    fn try_update_rejects_out_of_range_atomically() {
        let g = gen::path(4); // 3 edges
        let mut w = EdgeWeights::unit(&g);
        let err = w
            .try_update(&[(EdgeId(0), 9), (EdgeId(3), 5)])
            .expect_err("edge 3 does not exist");
        assert_eq!(
            err,
            WeightUpdateError {
                edge: EdgeId(3),
                num_edges: 3
            }
        );
        // Validation happens before any write: edge 0 kept its old weight.
        assert_eq!(w.weight(EdgeId(0)), 1, "failed updates must be atomic");
        w.try_update(&[(EdgeId(0), 9)]).expect("in range");
        assert_eq!(w.weight(EdgeId(0)), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_still_panics_out_of_range() {
        let g = gen::path(3);
        let mut w = EdgeWeights::unit(&g);
        w.update(&[(EdgeId(2), 1)]);
    }
}
