//! Rooted spanning trees with the paper's tree-edge addressing.
//!
//! The paper identifies a tree edge `e` by its deeper endpoint `v_e`
//! (Section 3.1: "let `v_e` be the endpoint of `e` that is further away from
//! the root"). [`RootedTree`] exposes exactly that view: every non-root tree
//! node owns its parent edge.

use crate::{EdgeId, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A rooted tree over a subset of a [`Graph`]'s nodes (a spanning tree of one
/// connected component).
///
/// Tree edges are graph edges; each non-root tree node `v` stores its parent
/// node and the connecting [`EdgeId`]. Nodes outside the tree (other
/// components) have no depth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RootedTree {
    root: NodeId,
    /// `parent[v] = (parent node, parent edge)`; `None` for the root and
    /// non-tree nodes.
    parent: Vec<Option<(NodeId, EdgeId)>>,
    /// Depth of each tree node; `u32::MAX` for non-tree nodes.
    depth: Vec<u32>,
    /// Tree nodes in BFS order from the root (root first, non-decreasing
    /// depth).
    order: Vec<NodeId>,
    /// `edge_child[e] = Some(v_e)` iff `e` is a tree edge with deeper
    /// endpoint `v_e`.
    edge_child: Vec<Option<NodeId>>,
    /// CSR of children lists.
    child_offsets: Vec<u32>,
    children: Vec<NodeId>,
}

impl RootedTree {
    /// Builds a tree from BFS-style parent pointers.
    ///
    /// `order` must list the tree's nodes in non-decreasing `dist`, root
    /// first; `dist` must be `u32::MAX` exactly for non-tree nodes. This is
    /// the format produced by [`crate::bfs::bfs`].
    ///
    /// # Panics
    ///
    /// Panics if the inputs are inconsistent (root has a parent, a non-root
    /// tree node lacks one, parent edge does not exist in `g`, or depths
    /// disagree with parents).
    pub fn from_parents(
        g: &Graph,
        root: NodeId,
        parent: &[Option<(NodeId, EdgeId)>],
        dist: &[u32],
        order: &[NodeId],
    ) -> Self {
        let n = g.num_nodes();
        assert_eq!(parent.len(), n);
        assert_eq!(dist.len(), n);
        assert!(parent[root.index()].is_none(), "root must have no parent");
        assert_eq!(dist[root.index()], 0, "root must have depth 0");
        assert_eq!(order.first(), Some(&root), "order must start at the root");

        let mut edge_child = vec![None; g.num_edges()];
        let mut child_count = vec![0u32; n];
        for &v in order {
            if v == root {
                continue;
            }
            let (p, e) = parent[v.index()]
                .unwrap_or_else(|| panic!("tree node {v:?} has no parent pointer"));
            let (a, b) = g.endpoints(e);
            assert!(
                (a, b) == (p.min(v), p.max(v)),
                "parent edge {e:?} does not connect {p:?} and {v:?}"
            );
            assert_eq!(
                dist[v.index()],
                dist[p.index()] + 1,
                "depth of {v:?} must be one more than its parent"
            );
            edge_child[e.index()] = Some(v);
            child_count[p.index()] += 1;
        }
        let mut child_offsets = vec![0u32; n + 1];
        for i in 0..n {
            child_offsets[i + 1] = child_offsets[i] + child_count[i];
        }
        let mut cursor = child_offsets.clone();
        let mut children = vec![NodeId(0); order.len().saturating_sub(1)];
        for &v in order {
            if v == root {
                continue;
            }
            let (p, _) = parent[v.index()].unwrap();
            children[cursor[p.index()] as usize] = v;
            cursor[p.index()] += 1;
        }
        RootedTree {
            root,
            parent: parent.to_vec(),
            depth: dist.to_vec(),
            order: order.to_vec(),
            edge_child,
            child_offsets,
            children,
        }
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree (its component).
    #[inline]
    pub fn num_tree_nodes(&self) -> usize {
        self.order.len()
    }

    /// Whether `v` belongs to the tree's component.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.depth[v.index()] != u32::MAX
    }

    /// Depth of tree node `v` (root has depth 0).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the tree.
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        let d = self.depth[v.index()];
        assert!(d != u32::MAX, "{v:?} is not in the tree");
        d
    }

    /// Maximum depth over tree nodes — the `D` of "a tree of depth at most
    /// `D`" in Definition 2.3.
    pub fn depth_of_tree(&self) -> u32 {
        self.order
            .last()
            .map(|&v| self.depth[v.index()])
            .unwrap_or(0)
    }

    /// Parent node and edge of `v`; `None` for the root or non-tree nodes.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[v.index()]
    }

    /// The children of `v` in the tree.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        let lo = self.child_offsets[v.index()] as usize;
        let hi = self.child_offsets[v.index() + 1] as usize;
        &self.children[lo..hi]
    }

    /// Tree nodes in BFS order (root first, non-decreasing depth).
    #[inline]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Tree nodes in order of **decreasing depth** — the edge-processing
    /// order of the Theorem 3.1 sweep ("we process tree edges in order of
    /// decreasing depths, level by level").
    pub fn order_deepest_first(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().rev().copied()
    }

    /// Whether `e` is a tree edge.
    #[inline]
    pub fn is_tree_edge(&self, e: EdgeId) -> bool {
        self.edge_child[e.index()].is_some()
    }

    /// The deeper endpoint `v_e` of tree edge `e`, or `None` if `e` is not a
    /// tree edge.
    #[inline]
    pub fn deeper_endpoint(&self, e: EdgeId) -> Option<NodeId> {
        self.edge_child[e.index()]
    }

    /// Iterator over `(edge, v_e)` for all tree edges.
    pub fn tree_edges(&self) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.order
            .iter()
            .filter_map(move |&v| self.parent[v.index()].map(|(_, e)| (e, v)))
    }

    /// Number of tree edges (`num_tree_nodes() - 1` for non-empty trees).
    pub fn num_tree_edges(&self) -> usize {
        self.order.len().saturating_sub(1)
    }

    /// Walks from `v` to the root, yielding `(node, parent_edge)` pairs —
    /// `v` first, root's child last.
    pub fn path_to_root(&self, v: NodeId) -> PathToRoot<'_> {
        PathToRoot {
            tree: self,
            cur: Some(v),
        }
    }

    /// The ancestor of `v` at depth `target_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the tree or `target_depth > depth(v)`.
    pub fn ancestor_at_depth(&self, v: NodeId, target_depth: u32) -> NodeId {
        let mut cur = v;
        assert!(self.depth(v) >= target_depth, "target depth above node");
        while self.depth(cur) > target_depth {
            cur = self.parent(cur).expect("non-root node must have parent").0;
        }
        cur
    }

    /// Subtree sizes for every tree node (1 for leaves). Non-tree nodes get 0.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![0u32; self.parent.len()];
        for &v in self.order.iter().rev() {
            size[v.index()] += 1;
            if let Some((p, _)) = self.parent[v.index()] {
                let s = size[v.index()];
                size[p.index()] += s;
            }
        }
        size
    }
}

/// Iterator returned by [`RootedTree::path_to_root`].
#[derive(Clone, Debug)]
pub struct PathToRoot<'a> {
    tree: &'a RootedTree,
    cur: Option<NodeId>,
}

impl Iterator for PathToRoot<'_> {
    /// `(node, edge to its parent)`.
    type Item = (NodeId, EdgeId);

    fn next(&mut self) -> Option<Self::Item> {
        let v = self.cur?;
        match self.tree.parent(v) {
            Some((p, e)) => {
                self.cur = Some(p);
                Some((v, e))
            }
            None => {
                self.cur = None;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, gen};

    #[test]
    fn bfs_tree_structure_on_path() {
        let g = gen::path(4);
        let t = bfs::bfs_tree(&g, NodeId(1));
        assert_eq!(t.root(), NodeId(1));
        assert_eq!(t.depth(NodeId(1)), 0);
        assert_eq!(t.depth(NodeId(3)), 2);
        assert_eq!(t.depth_of_tree(), 2);
        assert_eq!(t.children(NodeId(1)).len(), 2);
        assert_eq!(t.num_tree_edges(), 3);
    }

    #[test]
    fn deeper_endpoint_matches_parent_edges() {
        let g = gen::grid(3, 3);
        let t = bfs::bfs_tree(&g, NodeId(4)); // center
        for (e, ve) in t.tree_edges() {
            let (p, pe) = t.parent(ve).unwrap();
            assert_eq!(pe, e);
            assert_eq!(t.depth(ve), t.depth(p) + 1);
            assert_eq!(t.deeper_endpoint(e), Some(ve));
        }
        let tree_edge_count = g.edges().filter(|er| t.is_tree_edge(er.id)).count();
        assert_eq!(tree_edge_count, 8);
    }

    #[test]
    fn path_to_root_walks_upward() {
        let g = gen::path(5);
        let t = bfs::bfs_tree(&g, NodeId(0));
        let path: Vec<_> = t.path_to_root(NodeId(4)).map(|(v, _)| v).collect();
        assert_eq!(path, vec![NodeId(4), NodeId(3), NodeId(2), NodeId(1)]);
        assert_eq!(t.path_to_root(NodeId(0)).count(), 0);
    }

    #[test]
    fn ancestor_at_depth() {
        let g = gen::path(6);
        let t = bfs::bfs_tree(&g, NodeId(0));
        assert_eq!(t.ancestor_at_depth(NodeId(5), 2), NodeId(2));
        assert_eq!(t.ancestor_at_depth(NodeId(5), 5), NodeId(5));
    }

    #[test]
    fn subtree_sizes_sum_up() {
        let g = gen::grid(3, 3);
        let t = bfs::bfs_tree(&g, NodeId(0));
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 9);
        for &v in t.order() {
            let expect: u32 = 1 + t.children(v).iter().map(|&c| sizes[c.index()]).sum::<u32>();
            assert_eq!(sizes[v.index()], expect);
        }
    }

    #[test]
    fn order_deepest_first_is_reverse_bfs() {
        let g = gen::path(4);
        let t = bfs::bfs_tree(&g, NodeId(0));
        let deepest: Vec<_> = t.order_deepest_first().collect();
        assert_eq!(deepest[0], NodeId(3));
        assert_eq!(*deepest.last().unwrap(), NodeId(0));
    }

    #[test]
    fn disconnected_nodes_are_outside_tree() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let t = bfs::bfs_tree(&g, NodeId(0));
        assert!(t.contains(NodeId(1)));
        assert!(!t.contains(NodeId(2)));
        assert_eq!(t.num_tree_nodes(), 2);
    }
}
