//! Flat binary on-disk format for CSR graphs (`.lcsg`).
//!
//! Route-planning engines (RoutingKit, `rust_road_router`) ship road
//! networks as raw little-endian `Vec<u32>` files of exactly the
//! `first_out`/`head` arrays a CSR graph is made of, so loading is a
//! handful of bulk reads instead of a parse. This module adopts that idea
//! for the shortcut workspace — it is what makes n = 10⁶–10⁷ instances
//! practical, where JSON edge lists take seconds to parse.
//!
//! # Format (`.lcsg`, version 1)
//!
//! All integers are **little-endian**. A fixed 40-byte header is followed
//! by the CSR sections in a fixed order:
//!
//! | offset | size      | field                                              |
//! |--------|-----------|----------------------------------------------------|
//! | 0      | 4         | magic `"LCSG"`                                     |
//! | 4      | 4         | version (`u32`) = 1                                |
//! | 8      | 4         | flags (`u32`): bit 0 = weights section present     |
//! | 12     | 4         | reserved = 0                                       |
//! | 16     | 8         | `n` (`u64`) — node count                           |
//! | 24     | 8         | `m` (`u64`) — undirected edge count                |
//! | 32     | 8         | checksum (`u64`) — FNV-1a over all section bytes   |
//! | 40     | 4·(n+1)   | `first_out` section (`u32` each)                   |
//! | …      | 4·2m      | `head` section (`u32` node id per directed slot)   |
//! | …      | 4·2m      | `edge_id` section (`u32` edge id per directed slot)|
//! | …      | 8·m       | weights section (`u64` each; only if flag bit 0)   |
//!
//! The canonical `endpoints` array is *not* stored: it is reconstructed in
//! one O(n + m) sweep during load, which doubles as full structural
//! validation (offset monotonicity, sorted simple adjacencies, every edge
//! id appearing exactly twice with consistent endpoints). The crate forbids
//! `unsafe`, so the loader does one `read_exact` per section and decodes
//! with `chunks_exact` — still a bulk copy, not a parse.
//!
//! # Example
//!
//! ```
//! use lcs_graph::{gen, io};
//!
//! let g = gen::grid(4, 5);
//! let mut buf = Vec::new();
//! io::write_graph(&mut buf, &g, None).unwrap();
//! let loaded = io::read_graph(&mut buf.as_slice()).unwrap();
//! assert_eq!(loaded.graph, g);
//! assert!(loaded.weights.is_none());
//! ```

use crate::weights::EdgeWeights;
use crate::{check_csr_capacity, CapacityError, EdgeId, Graph, NodeId};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The 4-byte magic at offset 0 of every `.lcsg` file.
pub const MAGIC: [u8; 4] = *b"LCSG";

/// The current (and only) format version.
pub const VERSION: u32 = 1;

/// Header flag bit 0: a weights section (`u64` per undirected edge) follows
/// the `edge_id` section.
pub const FLAG_WEIGHTS: u32 = 1;

const HEADER_LEN: usize = 40;

/// Reading or validating a `.lcsg` file failed.
///
/// Every variant is distinct so callers (notably `lcs_server`) can map them
/// to structured error codes; [`code`](IoError::code) provides the stable
/// snake_case identifier.
#[derive(Debug)]
pub enum IoError {
    /// An underlying filesystem/stream error (including file-not-found).
    Io(std::io::Error),
    /// The file does not start with the `"LCSG"` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The header's version field is not [`VERSION`].
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The header sets flag bits this version does not define.
    UnknownFlags {
        /// The full flags word.
        flags: u32,
    },
    /// The header's `n`/`m` exceed what the CSR layout can represent.
    Capacity(CapacityError),
    /// The stream ended before the named section was complete.
    Truncated {
        /// Which section (or `"header"`) was cut short.
        section: &'static str,
    },
    /// Bytes remain after the final section.
    TrailingBytes,
    /// The FNV-1a checksum over the section bytes does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed from the section bytes.
        found: u64,
    },
    /// The sections decode but do not describe a valid CSR graph
    /// (non-monotone `first_out`, unsorted or out-of-range adjacency,
    /// self-loop, edge id not appearing exactly twice, …).
    Inconsistent {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl IoError {
    /// A stable snake_case code per variant, for structured error
    /// reporting (the HTTP server maps these onto its 4xx error codes).
    /// File-not-found is distinguished from other I/O errors so it can map
    /// to a 404.
    pub fn code(&self) -> &'static str {
        match self {
            IoError::Io(e) if e.kind() == std::io::ErrorKind::NotFound => "graph_file_not_found",
            IoError::Io(_) => "graph_io",
            IoError::BadMagic { .. } => "graph_bad_magic",
            IoError::UnsupportedVersion { .. } => "graph_unsupported_version",
            IoError::UnknownFlags { .. } => "graph_unknown_flags",
            IoError::Capacity(_) => "graph_too_large",
            IoError::Truncated { .. } => "graph_truncated",
            IoError::TrailingBytes => "graph_trailing_bytes",
            IoError::ChecksumMismatch { .. } => "graph_checksum_mismatch",
            IoError::Inconsistent { .. } => "graph_inconsistent",
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::BadMagic { found } => {
                write!(f, "bad magic {found:?} — not an .lcsg file")
            }
            IoError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found} (expected {VERSION})")
            }
            IoError::UnknownFlags { flags } => {
                write!(f, "unknown flag bits in {flags:#x}")
            }
            IoError::Capacity(e) => write!(f, "{e}"),
            IoError::Truncated { section } => {
                write!(f, "file truncated inside the {section} section")
            }
            IoError::TrailingBytes => write!(f, "trailing bytes after the final section"),
            IoError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: header says {expected:#x}, sections hash to {found:#x}"
            ),
            IoError::Inconsistent { reason } => write!(f, "inconsistent CSR data: {reason}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Capacity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<CapacityError> for IoError {
    fn from(e: CapacityError) -> Self {
        IoError::Capacity(e)
    }
}

/// The parsed fixed-size header of an `.lcsg` file, as returned by
/// [`read_header`] — cheap introspection without loading the sections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version (currently always [`VERSION`]).
    pub version: u32,
    /// Whether a weights section is present.
    pub has_weights: bool,
    /// Node count.
    pub n: u64,
    /// Undirected edge count.
    pub m: u64,
    /// FNV-1a checksum over the section bytes.
    pub checksum: u64,
}

/// A graph loaded from an `.lcsg` file, with its optional weights.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    /// The reconstructed graph.
    pub graph: Graph,
    /// Edge weights, if the file carried a weights section.
    pub weights: Option<EdgeWeights>,
}

/// 64-bit FNV-1a, the checksum of the section bytes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Writes `g` (and optionally `weights`) in `.lcsg` form.
///
/// Two passes over the arrays: one to checksum the section bytes (the sum
/// lands in the header, which precedes the sections), one to write them.
/// Nothing proportional to the graph is buffered.
///
/// # Panics
///
/// Panics if `weights` is given with a length other than `g.num_edges()`.
pub fn write_graph(
    w: &mut impl Write,
    g: &Graph,
    weights: Option<&EdgeWeights>,
) -> std::io::Result<()> {
    if let Some(ws) = weights {
        assert_eq!(ws.len(), g.num_edges(), "one weight per edge required");
    }
    let mut fnv = Fnv::new();
    for &x in &g.first_out {
        fnv.update(&x.to_le_bytes());
    }
    for &NodeId(x) in &g.head {
        fnv.update(&x.to_le_bytes());
    }
    for &EdgeId(x) in &g.edge_id {
        fnv.update(&x.to_le_bytes());
    }
    if let Some(ws) = weights {
        for (_, x) in ws.iter() {
            fnv.update(&x.to_le_bytes());
        }
    }

    let flags = if weights.is_some() { FLAG_WEIGHTS } else { 0 };
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    w.write_all(&fnv.0.to_le_bytes())?;

    for &x in &g.first_out {
        w.write_all(&x.to_le_bytes())?;
    }
    for &NodeId(x) in &g.head {
        w.write_all(&x.to_le_bytes())?;
    }
    for &EdgeId(x) in &g.edge_id {
        w.write_all(&x.to_le_bytes())?;
    }
    if let Some(ws) = weights {
        for (_, x) in ws.iter() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Saves `g` (and optionally `weights`) to `path` via a buffered writer.
pub fn save_graph(
    path: impl AsRef<Path>,
    g: &Graph,
    weights: Option<&EdgeWeights>,
) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_graph(&mut w, g, weights)?;
    w.flush()?;
    Ok(())
}

fn parse_header(buf: &[u8; HEADER_LEN]) -> Result<Header, IoError> {
    let magic = [buf[0], buf[1], buf[2], buf[3]];
    if magic != MAGIC {
        return Err(IoError::BadMagic { found: magic });
    }
    let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
    let version = u32_at(4);
    if version != VERSION {
        return Err(IoError::UnsupportedVersion { found: version });
    }
    let flags = u32_at(8);
    if flags & !FLAG_WEIGHTS != 0 {
        return Err(IoError::UnknownFlags { flags });
    }
    let (n, m) = (u64_at(16), u64_at(24));
    check_csr_capacity(n, m)?;
    Ok(Header {
        version,
        has_weights: flags & FLAG_WEIGHTS != 0,
        n,
        m,
        checksum: u64_at(32),
    })
}

/// Reads and validates only the fixed-size header — magic, version, flags
/// and capacity limits are checked, the sections are not touched.
pub fn read_header(r: &mut impl Read) -> Result<Header, IoError> {
    let mut buf = [0u8; HEADER_LEN];
    r.read_exact(&mut buf)
        .map_err(|e| truncated_or_io(e, "header"))?;
    parse_header(&buf)
}

/// Reads the header of the file at `path` without loading the sections.
pub fn load_header(path: impl AsRef<Path>) -> Result<Header, IoError> {
    read_header(&mut File::open(path)?)
}

fn truncated_or_io(e: std::io::Error, section: &'static str) -> IoError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        IoError::Truncated { section }
    } else {
        IoError::Io(e)
    }
}

/// One `read_exact` for a whole section, checksummed as raw bytes.
fn read_section(
    r: &mut impl Read,
    fnv: &mut Fnv,
    len_bytes: usize,
    section: &'static str,
) -> Result<Vec<u8>, IoError> {
    let mut buf = vec![0u8; len_bytes];
    r.read_exact(&mut buf)
        .map_err(|e| truncated_or_io(e, section))?;
    fnv.update(&buf);
    Ok(buf)
}

fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn inconsistent<T>(reason: String) -> Result<T, IoError> {
    Err(IoError::Inconsistent { reason })
}

/// Reads a `.lcsg` stream into a [`LoadedGraph`].
///
/// One `read_exact` per section; after the bulk reads, a single O(n + m)
/// sweep reconstructs the canonical `endpoints` array and verifies every
/// CSR invariant ([`IoError::Inconsistent`] on the first violation), so a
/// loaded graph is indistinguishable from one built by
/// [`GraphBuilder`](crate::GraphBuilder).
pub fn read_graph(r: &mut impl Read) -> Result<LoadedGraph, IoError> {
    let h = read_header(r)?;
    let n = h.n as usize;
    let m = h.m as usize;
    let slots = 2 * m;

    let mut fnv = Fnv::new();
    let first_out = decode_u32s(&read_section(r, &mut fnv, 4 * (n + 1), "first_out")?);
    let head_raw = decode_u32s(&read_section(r, &mut fnv, 4 * slots, "head")?);
    let edge_raw = decode_u32s(&read_section(r, &mut fnv, 4 * slots, "edge_id")?);
    let weights: Option<Vec<u64>> = if h.has_weights {
        let bytes = read_section(r, &mut fnv, 8 * m, "weights")?;
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    } else {
        None
    };
    if r.read(&mut [0u8; 1])? != 0 {
        return Err(IoError::TrailingBytes);
    }
    if fnv.0 != h.checksum {
        return Err(IoError::ChecksumMismatch {
            expected: h.checksum,
            found: fnv.0,
        });
    }

    // Structural validation + endpoints reconstruction in one ascending
    // sweep. For the canonical edge (u, v) with u < v the slot under u is
    // visited first (and records the endpoints), the slot under v second
    // (and must agree) — so "exactly twice, consistently" falls out of
    // visiting nodes in order.
    if first_out[0] != 0 {
        return inconsistent(format!("first_out[0] = {} (expected 0)", first_out[0]));
    }
    if first_out[n] as usize != slots {
        return inconsistent(format!("first_out[n] = {} but 2m = {slots}", first_out[n]));
    }
    let mut endpoints = vec![(NodeId(0), NodeId(0)); m];
    let mut seen = vec![0u8; m];
    for v in 0..n {
        let (lo, hi) = (first_out[v] as usize, first_out[v + 1] as usize);
        if hi < lo || hi > slots {
            return inconsistent(format!("first_out not monotone at node {v}: [{lo}, {hi})"));
        }
        let mut prev: Option<u32> = None;
        for s in lo..hi {
            let w = head_raw[s];
            let e = edge_raw[s];
            if w as usize >= n {
                return inconsistent(format!("head {w} out of range at slot {s}"));
            }
            if w as usize == v {
                return inconsistent(format!("self-loop at node {v}"));
            }
            if prev.is_some_and(|p| p >= w) {
                return inconsistent(format!("adjacency of node {v} not strictly sorted"));
            }
            prev = Some(w);
            if e as usize >= m {
                return inconsistent(format!("edge id {e} out of range at slot {s}"));
            }
            let ei = e as usize;
            if (v as u32) < w {
                if seen[ei] != 0 {
                    return inconsistent(format!("edge {e} recorded more than twice"));
                }
                endpoints[ei] = (NodeId(v as u32), NodeId(w));
                seen[ei] = 1;
            } else {
                if seen[ei] != 1 || endpoints[ei] != (NodeId(w), NodeId(v as u32)) {
                    return inconsistent(format!(
                        "edge {e} has mismatched slots (endpoints disagree)"
                    ));
                }
                seen[ei] = 2;
            }
        }
    }
    if let Some(e) = seen.iter().position(|&s| s != 2) {
        return inconsistent(format!("edge {e} does not appear in exactly two slots"));
    }

    let graph = Graph {
        num_nodes: n,
        endpoints,
        first_out,
        head: head_raw.into_iter().map(NodeId).collect(),
        edge_id: edge_raw.into_iter().map(EdgeId).collect(),
    };
    let weights = weights.map(|ws| EdgeWeights::from_vec(&graph, ws));
    Ok(LoadedGraph { graph, weights })
}

/// Loads the `.lcsg` file at `path` via a buffered reader.
pub fn load_graph(path: impl AsRef<Path>) -> Result<LoadedGraph, IoError> {
    read_graph(&mut BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn round_trip(g: &Graph, weights: Option<&EdgeWeights>) -> LoadedGraph {
        let mut buf = Vec::new();
        write_graph(&mut buf, g, weights).unwrap();
        read_graph(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trips_bit_identically() {
        for g in [
            gen::grid(5, 7),
            gen::complete(6),
            gen::path(1),
            Graph::from_edges(0, []),
        ] {
            let loaded = round_trip(&g, None);
            assert_eq!(loaded.graph, g);
            assert!(loaded.weights.is_none());
        }
    }

    #[test]
    fn round_trips_weights() {
        let g = gen::torus(4, 5);
        let mut rng = SmallRng::seed_from_u64(11);
        let ws = EdgeWeights::random(&g, 1000, &mut rng);
        let loaded = round_trip(&g, Some(&ws));
        assert_eq!(loaded.graph, g);
        assert_eq!(loaded.weights.unwrap(), ws);
    }

    #[test]
    fn header_introspection() {
        let g = gen::grid(3, 4);
        let mut buf = Vec::new();
        write_graph(&mut buf, &g, Some(&EdgeWeights::unit(&g))).unwrap();
        let h = read_header(&mut buf.as_slice()).unwrap();
        assert_eq!(h.version, VERSION);
        assert!(h.has_weights);
        assert_eq!(h.n, 12);
        assert_eq!(h.m, g.num_edges() as u64);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &gen::path(3), None).unwrap();
        buf[0] = b'X';
        let err = read_graph(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::BadMagic { .. }), "{err}");
        assert_eq!(err.code(), "graph_bad_magic");
    }

    #[test]
    fn truncation_names_the_section() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &gen::grid(4, 4), None).unwrap();
        for (cut, section, code) in [
            (10, "header", "graph_truncated"),
            (HEADER_LEN + 2, "first_out", "graph_truncated"),
            (buf.len() - 1, "edge_id", "graph_truncated"),
        ] {
            let err = read_graph(&mut &buf[..cut]).unwrap_err();
            match &err {
                IoError::Truncated { section: s } => assert_eq!(*s, section),
                other => panic!("expected truncation at {cut}, got {other}"),
            }
            assert_eq!(err.code(), code);
        }
    }

    #[test]
    fn checksum_flip_is_detected() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &gen::grid(4, 4), None).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let err = read_graph(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::ChecksumMismatch { .. }), "{err}");
        assert_eq!(err.code(), "graph_checksum_mismatch");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &gen::path(4), None).unwrap();
        buf.push(0);
        let err = read_graph(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::TrailingBytes), "{err}");
    }

    #[test]
    fn unsupported_version_and_flags_are_typed() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &gen::path(3), None).unwrap();
        let mut v2 = buf.clone();
        v2[4] = 2;
        assert!(matches!(
            read_graph(&mut v2.as_slice()).unwrap_err(),
            IoError::UnsupportedVersion { found: 2 }
        ));
        buf[8] |= 0x80;
        assert!(matches!(
            read_graph(&mut buf.as_slice()).unwrap_err(),
            IoError::UnknownFlags { .. }
        ));
    }

    #[test]
    fn oversized_header_counts_are_capacity_errors() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &gen::path(3), None).unwrap();
        // Patch n to 2^32: beyond MAX_NODES, caught before any allocation.
        buf[16..24].copy_from_slice(&(1u64 << 32).to_le_bytes());
        let err = read_graph(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Capacity(_)), "{err}");
        assert_eq!(err.code(), "graph_too_large");
    }

    /// Rewrites the header checksum so corruption of the *section* bytes
    /// reaches structural validation instead of tripping the checksum.
    fn fix_checksum(buf: &mut [u8]) {
        let mut fnv = Fnv::new();
        fnv.update(&buf[HEADER_LEN..]);
        buf[32..40].copy_from_slice(&fnv.0.to_le_bytes());
    }

    #[test]
    fn non_monotone_first_out_is_inconsistent() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &gen::path(3), None).unwrap();
        // first_out = [0, 1, 3, 4]; drop entry 2 to 0 so node 1's range
        // decreases: [1, 0).
        buf[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&0u32.to_le_bytes());
        fix_checksum(&mut buf);
        let err = read_graph(&mut buf.as_slice()).unwrap_err();
        match &err {
            IoError::Inconsistent { reason } => {
                assert!(reason.contains("monotone"), "{reason}")
            }
            other => panic!("expected Inconsistent, got {other}"),
        }
        assert_eq!(err.code(), "graph_inconsistent");
    }

    #[test]
    fn dangling_edge_id_is_inconsistent() {
        let g = gen::path(4);
        let mut buf = Vec::new();
        write_graph(&mut buf, &g, None).unwrap();
        // Point the first edge_id slot at a different edge: that edge now
        // appears three times and edge 0 only once.
        let edge_section = HEADER_LEN + 4 * (g.num_nodes() + 1) + 4 * 2 * g.num_edges();
        buf[edge_section..edge_section + 4].copy_from_slice(&1u32.to_le_bytes());
        fix_checksum(&mut buf);
        let err = read_graph(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Inconsistent { .. }), "{err}");
    }

    #[test]
    fn io_code_distinguishes_not_found() {
        let err = load_graph("/nonexistent/definitely-missing.lcsg").unwrap_err();
        assert_eq!(err.code(), "graph_file_not_found");
    }
}
