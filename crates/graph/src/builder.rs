//! Incremental construction of [`Graph`]s.

use crate::{EdgeId, Graph, NodeId};

/// Builder for [`Graph`].
///
/// Collects edges, validates them (no self-loops, endpoints in range), and
/// produces a CSR [`Graph`] with sorted adjacency lists. Duplicate edges are
/// rejected at [`build`](GraphBuilder::build) time.
///
/// # Example
///
/// ```
/// use lcs_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(4);
/// for i in 0..3u32 {
///     b.add_edge(NodeId(i), NodeId(i + 1));
/// }
/// let path = b.build();
/// assert_eq!(path.num_edges(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` and returns its future [`EdgeId`].
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(u != v, "self-loop at {u:?} rejected");
        assert!(
            u.index() < self.num_nodes && v.index() < self.num_nodes,
            "edge ({u:?}, {v:?}) out of range for {} nodes",
            self.num_nodes
        );
        let e = EdgeId::from_index(self.edges.len());
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        e
    }

    /// Adds `{u, v}` unless it already exists; returns the edge id either way.
    ///
    /// Linear scan free: uses a sort at build time for duplicate detection,
    /// so this method keeps its own hash set only when first called.
    pub fn add_edge_dedup(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if let Some(pos) = self.edges.iter().position(|&(x, y)| (x, y) == (a, b)) {
            return EdgeId::from_index(pos);
        }
        self.add_edge(u, v)
    }

    /// Whether `{u, v}` has been added already.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&(a, b))
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// # Panics
    ///
    /// Panics if duplicate edges were added (use
    /// [`add_edge_dedup`](Self::add_edge_dedup) to silently ignore them).
    pub fn build(self) -> Graph {
        let n = self.num_nodes;
        let m = self.edges.len();
        // Duplicate detection via sorted copy.
        let mut sorted = self.edges.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(
                w[0] != w[1],
                "duplicate edge ({:?}, {:?}) rejected",
                w[0].0,
                w[0].1
            );
        }
        // Degree counting, then a prefix sum into the CSR offsets.
        let mut first_out = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            first_out[u.index() + 1] += 1;
            first_out[v.index() + 1] += 1;
        }
        for i in 0..n {
            first_out[i + 1] += first_out[i];
        }
        // Scatter both directions into a scratch (head, edge) array, sort
        // each node's range by head, then split into the SoA arrays.
        let mut cursor = first_out.clone();
        let mut scratch = vec![(NodeId(0), EdgeId(0)); 2 * m];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let e = EdgeId(i as u32);
            scratch[cursor[u.index()] as usize] = (v, e);
            cursor[u.index()] += 1;
            scratch[cursor[v.index()] as usize] = (u, e);
            cursor[v.index()] += 1;
        }
        for i in 0..n {
            let lo = first_out[i] as usize;
            let hi = first_out[i + 1] as usize;
            scratch[lo..hi].sort_unstable_by_key(|&(node, _)| node);
        }
        let (head, edge_id): (Vec<NodeId>, Vec<EdgeId>) = scratch.into_iter().unzip();
        Graph {
            num_nodes: n,
            endpoints: self.edges,
            first_out,
            head,
            edge_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_any_insertion_order() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(2), NodeId(0));
        b.add_edge(NodeId(1), NodeId(0));
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        GraphBuilder::new(2).add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).add_edge(NodeId(0), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicates_at_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        b.build();
    }

    #[test]
    fn dedup_returns_existing_id() {
        let mut b = GraphBuilder::new(3);
        let e0 = b.add_edge_dedup(NodeId(0), NodeId(1));
        let e1 = b.add_edge_dedup(NodeId(1), NodeId(0));
        assert_eq!(e0, e1);
        assert_eq!(b.num_edges(), 1);
        assert!(b.has_edge(NodeId(1), NodeId(0)));
    }
}
