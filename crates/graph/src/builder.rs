//! Incremental construction of [`Graph`]s.

use crate::{EdgeId, Graph, NodeId};
use std::fmt;

/// Largest node count the CSR layout can address: node ids are `u32`, and
/// [`Graph::nodes`] enumerates `0..n as u32`, so `n` itself must fit in
/// `u32`.
pub const MAX_NODES: u64 = u32::MAX as u64;

/// Largest undirected edge count the CSR layout can address: the
/// `first_out` offsets are `u32` values counting **directed** slots, so
/// `2m` must fit in `u32` (and edge ids, also `u32`, follow a fortiori).
pub const MAX_EDGES: u64 = (u32::MAX / 2) as u64;

/// The requested graph exceeds what the `u32`-based CSR index arithmetic
/// can represent. Returned by [`check_csr_capacity`],
/// [`GraphBuilder::try_build`] and [`Graph::try_from_edges`] **before** any
/// proportional allocation happens, so million-node (and beyond) inputs
/// fail with a typed error instead of a silent `u32` wrap in release
/// builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapacityError {
    /// `n` exceeds [`MAX_NODES`].
    TooManyNodes {
        /// The requested node count.
        n: u64,
    },
    /// `m` exceeds [`MAX_EDGES`].
    TooManyEdges {
        /// The requested undirected edge count.
        m: u64,
    },
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CapacityError::TooManyNodes { n } => {
                write!(f, "{n} nodes exceed the CSR limit of {MAX_NODES}")
            }
            CapacityError::TooManyEdges { m } => write!(
                f,
                "{m} edges exceed the CSR limit of {MAX_EDGES} (2m must fit in u32)"
            ),
        }
    }
}

impl std::error::Error for CapacityError {}

/// Checks that a graph with `n` nodes and `m` undirected edges fits the
/// CSR layout's `u32` index arithmetic (see [`MAX_NODES`] / [`MAX_EDGES`]).
///
/// Counts are taken as `u64` so callers holding on-disk headers can
/// validate them before casting to `usize`.
pub fn check_csr_capacity(n: u64, m: u64) -> Result<(), CapacityError> {
    if n > MAX_NODES {
        return Err(CapacityError::TooManyNodes { n });
    }
    if m > MAX_EDGES {
        return Err(CapacityError::TooManyEdges { m });
    }
    Ok(())
}

/// Builder for [`Graph`].
///
/// Collects edges, validates them (no self-loops, endpoints in range), and
/// produces a CSR [`Graph`] with sorted adjacency lists. Duplicate edges are
/// rejected at [`build`](GraphBuilder::build) time.
///
/// # Example
///
/// ```
/// use lcs_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(4);
/// for i in 0..3u32 {
///     b.add_edge(NodeId(i), NodeId(i + 1));
/// }
/// let path = b.build();
/// assert_eq!(path.num_edges(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` and returns its future [`EdgeId`].
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(u != v, "self-loop at {u:?} rejected");
        assert!(
            u.index() < self.num_nodes && v.index() < self.num_nodes,
            "edge ({u:?}, {v:?}) out of range for {} nodes",
            self.num_nodes
        );
        let e = EdgeId::from_index(self.edges.len());
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        e
    }

    /// Adds `{u, v}` unless it already exists; returns the edge id either way.
    ///
    /// Linear scan free: uses a sort at build time for duplicate detection,
    /// so this method keeps its own hash set only when first called.
    pub fn add_edge_dedup(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if let Some(pos) = self.edges.iter().position(|&(x, y)| (x, y) == (a, b)) {
            return EdgeId::from_index(pos);
        }
        self.add_edge(u, v)
    }

    /// Whether `{u, v}` has been added already.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&(a, b))
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// # Panics
    ///
    /// Panics if duplicate edges were added (use
    /// [`add_edge_dedup`](Self::add_edge_dedup) to silently ignore them) or
    /// if the graph exceeds the CSR capacity limits (see
    /// [`try_build`](Self::try_build) for the fallible form).
    pub fn build(self) -> Graph {
        match self.try_build() {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`build`](Self::build) with the capacity limits checked up front:
    /// returns a typed [`CapacityError`] — **before** allocating anything
    /// proportional to `n` or `m` — when the graph cannot be represented in
    /// the `u32`-based CSR layout ([`MAX_NODES`] / [`MAX_EDGES`]).
    ///
    /// # Panics
    ///
    /// Still panics on duplicate edges, which are a logic error rather than
    /// a size limit.
    pub fn try_build(self) -> Result<Graph, CapacityError> {
        check_csr_capacity(self.num_nodes as u64, self.edges.len() as u64)?;
        Ok(self.build_unchecked())
    }

    fn build_unchecked(self) -> Graph {
        let n = self.num_nodes;
        let m = self.edges.len();
        // Duplicate detection via sorted copy.
        let mut sorted = self.edges.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(
                w[0] != w[1],
                "duplicate edge ({:?}, {:?}) rejected",
                w[0].0,
                w[0].1
            );
        }
        // Degree counting, then a prefix sum into the CSR offsets.
        let mut first_out = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            first_out[u.index() + 1] += 1;
            first_out[v.index() + 1] += 1;
        }
        for i in 0..n {
            first_out[i + 1] += first_out[i];
        }
        // Scatter both directions into a scratch (head, edge) array, sort
        // each node's range by head, then split into the SoA arrays.
        let mut cursor = first_out.clone();
        let mut scratch = vec![(NodeId(0), EdgeId(0)); 2 * m];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let e = EdgeId(i as u32);
            scratch[cursor[u.index()] as usize] = (v, e);
            cursor[u.index()] += 1;
            scratch[cursor[v.index()] as usize] = (u, e);
            cursor[v.index()] += 1;
        }
        for i in 0..n {
            let lo = first_out[i] as usize;
            let hi = first_out[i + 1] as usize;
            scratch[lo..hi].sort_unstable_by_key(|&(node, _)| node);
        }
        let (head, edge_id): (Vec<NodeId>, Vec<EdgeId>) = scratch.into_iter().unzip();
        Graph {
            num_nodes: n,
            endpoints: self.edges,
            first_out,
            head,
            edge_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_any_insertion_order() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(2), NodeId(0));
        b.add_edge(NodeId(1), NodeId(0));
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        GraphBuilder::new(2).add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).add_edge(NodeId(0), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicates_at_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        b.build();
    }

    #[test]
    fn capacity_check_at_the_boundaries() {
        // Exactly at the limits: representable.
        assert_eq!(check_csr_capacity(MAX_NODES, MAX_EDGES), Ok(()));
        assert_eq!(check_csr_capacity(0, 0), Ok(()));
        // One past either limit: typed errors, not u32 wrap-around.
        assert_eq!(
            check_csr_capacity(MAX_NODES + 1, 0),
            Err(CapacityError::TooManyNodes { n: MAX_NODES + 1 })
        );
        assert_eq!(
            check_csr_capacity(0, MAX_EDGES + 1),
            Err(CapacityError::TooManyEdges { m: MAX_EDGES + 1 })
        );
    }

    #[test]
    fn try_build_rejects_oversized_n_before_allocating() {
        // A builder over 2^32 nodes must fail fast with a typed error; the
        // check runs before the n+1-sized offset array would be allocated.
        let b = GraphBuilder::new(MAX_NODES as usize + 1);
        assert_eq!(
            b.try_build(),
            Err(CapacityError::TooManyNodes { n: MAX_NODES + 1 })
        );
    }

    #[test]
    fn capacity_error_messages_name_the_limit() {
        let e = CapacityError::TooManyEdges { m: MAX_EDGES + 1 };
        assert!(e.to_string().contains("2m must fit in u32"));
        let e = CapacityError::TooManyNodes { n: MAX_NODES + 7 };
        assert!(e.to_string().contains("CSR limit"));
    }

    #[test]
    fn dedup_returns_existing_id() {
        let mut b = GraphBuilder::new(3);
        let e0 = b.add_edge_dedup(NodeId(0), NodeId(1));
        let e1 = b.add_edge_dedup(NodeId(1), NodeId(0));
        assert_eq!(e0, e1);
        assert_eq!(b.num_edges(), 1);
        assert!(b.has_edge(NodeId(1), NodeId(0)));
    }
}
