//! Connected components.

use crate::{bfs, Graph, NodeId};

/// Connected-component labelling of a graph.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[v]` = dense component index in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Nodes of each component.
    pub members: Vec<Vec<NodeId>>,
}

/// Computes connected components via repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    for v in g.nodes() {
        if label[v.index()] != u32::MAX {
            continue;
        }
        let id = members.len() as u32;
        let res = bfs::bfs(g, v);
        let mut comp = Vec::new();
        for &u in &res.order {
            label[u.index()] = id;
            comp.push(u);
        }
        members.push(comp);
    }
    Components {
        count: members.len(),
        label,
        members,
    }
}

/// Whether the whole graph is connected (the empty graph counts as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.num_nodes() == 0 {
        return true;
    }
    bfs::bfs(g, NodeId(0)).order.len() == g.num_nodes()
}

/// Whether `nodes` induces a connected subgraph of `g` (the paper requires
/// each part `P_i` to induce a connected subgraph; Definition 2.1).
///
/// The empty set counts as connected.
pub fn induces_connected(g: &Graph, nodes: &[NodeId]) -> bool {
    if nodes.is_empty() {
        return true;
    }
    let mut inside = vec![false; g.num_nodes()];
    for &v in nodes {
        inside[v.index()] = true;
    }
    let res = bfs::bfs_filtered(g, &nodes[..1], |_, next| inside[next.index()]);
    nodes.iter().all(|&v| res.reached(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn single_component_on_grid() {
        let g = gen::grid(3, 4);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert!(is_connected(&g));
        assert_eq!(c.members[0].len(), 12);
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.label[0], c.label[1]);
        assert_ne!(c.label[0], c.label[2]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn induced_connectivity() {
        let g = gen::path(5);
        assert!(induces_connected(&g, &[NodeId(1), NodeId(2), NodeId(3)]));
        assert!(!induces_connected(&g, &[NodeId(0), NodeId(2)]));
        assert!(induces_connected(&g, &[]));
        assert!(induces_connected(&g, &[NodeId(4)]));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::from_edges(0, []);
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count, 0);
    }
}
