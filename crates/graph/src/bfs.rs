//! Breadth-first search and BFS spanning trees.

use crate::{EdgeId, Graph, NodeId, RootedTree};
use std::collections::VecDeque;

/// Result of a (multi-source) BFS: distances and parent pointers.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// `dist[v]` = hop distance from the nearest source, `u32::MAX` if
    /// unreachable.
    pub dist: Vec<u32>,
    /// `parent[v]` = predecessor node and connecting edge on a shortest path,
    /// `None` for sources and unreachable nodes.
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
    /// Nodes in visit order (sources first).
    pub order: Vec<NodeId>,
}

impl BfsResult {
    /// Whether `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v.index()] != u32::MAX
    }

    /// The farthest reached node and its distance (ties broken by smallest
    /// id). `None` if no node was reached.
    pub fn farthest(&self) -> Option<(NodeId, u32)> {
        self.order
            .iter()
            .map(|&v| (v, self.dist[v.index()]))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Maximum finite distance (the eccentricity of the source set within its
    /// component).
    pub fn eccentricity(&self) -> u32 {
        self.farthest().map(|(_, d)| d).unwrap_or(0)
    }
}

/// BFS from a single source over the whole graph.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs(g: &Graph, src: NodeId) -> BfsResult {
    bfs_multi(g, std::slice::from_ref(&src))
}

/// BFS from multiple sources (distance = hops to the nearest source).
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn bfs_multi(g: &Graph, sources: &[NodeId]) -> BfsResult {
    bfs_filtered(g, sources, |_, _| true)
}

/// BFS that only traverses edges accepted by `allow(edge, next_node)`.
///
/// Useful for BFS restricted to a subgraph (e.g. `G[P_i] + H_i` when
/// measuring shortcut dilation) without materializing it.
pub fn bfs_filtered(
    g: &Graph,
    sources: &[NodeId],
    mut allow: impl FnMut(EdgeId, NodeId) -> bool,
) -> BfsResult {
    let n = g.num_nodes();
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![None; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s.index() < n, "source {s:?} out of range");
        if dist[s.index()] == u32::MAX {
            dist[s.index()] = 0;
            order.push(s);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        // Hot loop: walk the CSR head slice directly; the edge-id slice is
        // only touched for newly discovered nodes.
        let heads = g.heads(u);
        let eids = g.edge_ids(u);
        for (port, &next) in heads.iter().enumerate() {
            if dist[next.index()] == u32::MAX && allow(eids[port], next) {
                dist[next.index()] = du + 1;
                parent[next.index()] = Some((u, eids[port]));
                order.push(next);
                queue.push_back(next);
            }
        }
    }
    BfsResult {
        dist,
        parent,
        order,
    }
}

/// Builds a BFS spanning tree of the component of `root`.
///
/// The returned tree has depth equal to the eccentricity of `root`, hence at
/// most the diameter `D` of a connected `G` — the tree `T` required by
/// Theorem 3.1 of the paper.
///
/// The parent of each node is the **minimum-id neighbor one level closer to
/// the root** (not the first-discovered one). This canonical rule is what
/// the distributed BFS protocol converges to — all `Dist(d-1)` offers reach
/// a node in the same round and the smallest port wins — so the centralized
/// and simulated constructions build the identical tree, which the exact
/// detection mode of Theorem 1.5 relies on.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs_tree(g: &Graph, root: NodeId) -> RootedTree {
    let res = bfs(g, root);
    let mut parent = res.parent;
    for &v in &res.order {
        if v == root {
            continue;
        }
        let d = res.dist[v.index()];
        // Neighbors are sorted by id: the first one at depth d-1 is the
        // canonical parent.
        let heads = g.heads(v);
        let eids = g.edge_ids(v);
        for (port, &u) in heads.iter().enumerate() {
            if res.dist[u.index()] != u32::MAX && res.dist[u.index()] + 1 == d {
                parent[v.index()] = Some((u, eids[port]));
                break;
            }
        }
    }
    RootedTree::from_parents(g, root, &parent, &res.dist, &res.order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn distances_on_a_path() {
        let g = gen::path(5);
        let res = bfs(&g, NodeId(0));
        assert_eq!(res.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(res.farthest(), Some((NodeId(4), 4)));
        assert_eq!(res.eccentricity(), 4);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = gen::path(5);
        let res = bfs_multi(&g, &[NodeId(0), NodeId(4)]);
        assert_eq!(res.dist, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn unreachable_nodes_have_max_dist() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let res = bfs(&g, NodeId(0));
        assert!(res.reached(NodeId(1)));
        assert!(!res.reached(NodeId(2)));
        assert_eq!(res.dist[3], u32::MAX);
    }

    #[test]
    fn filtered_bfs_respects_filter() {
        let g = gen::cycle(6);
        // Disallow the edge between 0 and 5, turning the cycle into a path.
        let forbidden = g.find_edge(NodeId(0), NodeId(5)).unwrap();
        let res = bfs_filtered(&g, &[NodeId(0)], |e, _| e != forbidden);
        assert_eq!(res.dist[5], 5);
    }

    #[test]
    fn bfs_tree_depth_is_eccentricity() {
        let g = gen::grid(3, 3);
        let t = bfs_tree(&g, NodeId(0));
        assert_eq!(t.depth_of_tree(), 4); // corner to corner of 3x3 grid
        assert_eq!(t.num_tree_nodes(), 9);
    }

    #[test]
    fn duplicate_sources_are_deduped() {
        let g = gen::path(3);
        let res = bfs_multi(&g, &[NodeId(1), NodeId(1)]);
        assert_eq!(res.order.len(), 3);
        assert_eq!(res.dist[1], 0);
    }
}
