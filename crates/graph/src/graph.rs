//! The immutable CSR graph type.
//!
//! # Layout
//!
//! The graph is stored as three flat arrays in structure-of-arrays form
//! (the `first_out`/`head` layout of high-throughput route planners):
//!
//! - `first_out[v] .. first_out[v + 1]` delimits node `v`'s adjacency range
//!   (length `n + 1`, so degrees are O(1) subtractions),
//! - `head[i]` is the neighbor node of directed-edge slot `i` (sorted per
//!   node, enabling binary-search port lookup),
//! - `edge_id[i]` is the undirected edge behind slot `i`.
//!
//! Keeping `head` and `edge_id` separate (instead of an interleaved
//! `(node, edge)` array) halves the bytes touched by traversals that only
//! need neighbor ids — BFS over `head` alone streams 4 bytes per directed
//! edge. The slot index `first_out[v] + port` doubles as the canonical
//! *directed edge id*, which the CONGEST simulator uses to address its
//! per-edge delivery state without any per-run index building.

use crate::{EdgeId, GraphBuilder, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A neighbor entry in an adjacency list: the neighboring node together with
/// the id of the connecting edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Neighbor {
    /// The adjacent node.
    pub node: NodeId,
    /// The undirected edge connecting to `node`.
    pub edge: EdgeId,
}

/// A resolved edge: its id and both endpoints (`u < v` canonically).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeRef {
    /// The edge id.
    pub id: EdgeId,
    /// The smaller endpoint.
    pub u: NodeId,
    /// The larger endpoint.
    pub v: NodeId,
}

impl EdgeRef {
    /// Returns the endpoint opposite to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x:?} is not an endpoint of edge {:?}", self.id)
        }
    }
}

/// An immutable, undirected, simple graph in compressed-sparse-row form.
///
/// Construct via [`GraphBuilder`]. Nodes are `0..n`, edges are `0..m`;
/// adjacency lists are sorted by neighbor id. Self-loops and parallel edges
/// are rejected at build time, matching the simple network graphs of the
/// CONGEST model. See the module docs for the flat
/// `first_out`/`head`/`edge_id` layout.
///
/// # Example
///
/// ```
/// use lcs_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build();
/// assert_eq!(g.degree(NodeId(1)), 2);
/// assert_eq!(g.heads(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    pub(crate) num_nodes: usize,
    /// Canonical endpoints per edge, `endpoints[e] = (u, v)` with `u < v`.
    pub(crate) endpoints: Vec<(NodeId, NodeId)>,
    /// CSR offsets, length `num_nodes + 1`.
    pub(crate) first_out: Vec<u32>,
    /// Neighbor node per directed-edge slot, sorted within each node's range.
    pub(crate) head: Vec<NodeId>,
    /// Undirected edge id per directed-edge slot, parallel to `head`.
    pub(crate) edge_id: Vec<EdgeId>,
}

/// Iterator over a node's [`Neighbor`]s, zipping the `head` and `edge_id`
/// slices of the CSR layout. Prefer [`Graph::heads`] / [`Graph::edge_ids`]
/// in hot loops that only need one of the two.
#[derive(Clone, Debug)]
pub struct Neighbors<'a> {
    heads: std::slice::Iter<'a, NodeId>,
    edges: std::slice::Iter<'a, EdgeId>,
}

impl Iterator for Neighbors<'_> {
    type Item = Neighbor;

    #[inline]
    fn next(&mut self) -> Option<Neighbor> {
        let node = *self.heads.next()?;
        let edge = *self.edges.next()?;
        Some(Neighbor { node, edge })
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.heads.size_hint()
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

impl DoubleEndedIterator for Neighbors<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<Neighbor> {
        let node = *self.heads.next_back()?;
        let edge = *self.edges.next_back()?;
        Some(Neighbor { node, edge })
    }
}

impl std::iter::FusedIterator for Neighbors<'_> {}

impl Graph {
    /// Builds a graph from an edge list; convenience for
    /// `GraphBuilder` + `add_edge` loops.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n`, is a self-loop, or is a
    /// duplicate.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// [`from_edges`](Self::from_edges) with the CSR capacity limits checked
    /// up front instead of panicking: `n` and `m` beyond what the `u32`
    /// index arithmetic can represent produce a typed
    /// [`CapacityError`](crate::CapacityError) before anything proportional
    /// to the input is allocated.
    ///
    /// # Panics
    ///
    /// Still panics on malformed edges (self-loop, endpoint `>= n`,
    /// duplicates) — those are logic errors, not size limits.
    pub fn try_from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Self, crate::CapacityError> {
        crate::check_csr_capacity(n as u64, 0)?;
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.try_build()
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Edge density `m / n` (0 for the empty graph). A trivial lower bound on
    /// the minor density `δ(G)`.
    pub fn density(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.num_nodes as u32).map(NodeId)
    }

    /// Iterator over all edges with endpoints.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeRef> + Clone + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| EdgeRef {
                id: EdgeId(i as u32),
                u,
                v,
            })
    }

    /// The endpoints `(u, v)` of `e`, with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// The resolved [`EdgeRef`] for `e`.
    #[inline]
    pub fn edge_ref(&self, e: EdgeId) -> EdgeRef {
        let (u, v) = self.endpoints(e);
        EdgeRef { id: e, u, v }
    }

    /// The endpoint of `e` opposite to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of `e`.
    #[inline]
    pub fn opposite(&self, e: EdgeId, x: NodeId) -> NodeId {
        self.edge_ref(e).other(x)
    }

    /// The raw CSR offset array, length `n + 1`.
    ///
    /// `first_out[v] + port` is the canonical **directed edge id** of
    /// `v`'s `port`-th incident edge — a dense index in
    /// `0 .. 2m` that consumers (notably the CONGEST simulator's delivery
    /// arena) use to address per-directed-edge state in flat arrays.
    #[inline]
    pub fn first_out(&self) -> &[u32] {
        &self.first_out
    }

    /// The sorted neighbor-node slice of `v` (the `head` range of the CSR
    /// layout). `heads(v)[port]` is the neighbor on `port`.
    #[inline]
    pub fn heads(&self, v: NodeId) -> &[NodeId] {
        let lo = self.first_out[v.index()] as usize;
        let hi = self.first_out[v.index() + 1] as usize;
        &self.head[lo..hi]
    }

    /// The incident-edge slice of `v`, parallel to [`heads`](Self::heads):
    /// `edge_ids(v)[port]` connects `v` to `heads(v)[port]`.
    #[inline]
    pub fn edge_ids(&self, v: NodeId) -> &[EdgeId] {
        let lo = self.first_out[v.index()] as usize;
        let hi = self.first_out[v.index() + 1] as usize;
        &self.edge_id[lo..hi]
    }

    /// Iterator over the sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors {
            heads: self.heads(v).iter(),
            edges: self.edge_ids(v).iter(),
        }
    }

    /// The [`Neighbor`] of `v` on local port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree(v)`.
    #[inline]
    pub fn neighbor(&self, v: NodeId, port: usize) -> Neighbor {
        Neighbor {
            node: self.heads(v)[port],
            edge: self.edge_ids(v)[port],
        }
    }

    /// The local port of `v` leading to `w`, if adjacent (binary search).
    #[inline]
    pub fn port_to(&self, v: NodeId, w: NodeId) -> Option<usize> {
        self.heads(v).binary_search(&w).ok()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.first_out[v.index() + 1] - self.first_out[v.index()]) as usize
    }

    /// Looks up the edge between `u` and `v`, if present (binary search).
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.port_to(u, v).map(|p| self.edge_ids(u)[p])
    }

    /// Whether `u` and `v` are adjacent.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Maximum degree, 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree, 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Returns the subgraph induced by `keep_nodes` together with the mapping
    /// from old node ids to new ones (dense renumbering) and from new edge
    /// ids to old ones.
    ///
    /// Nodes absent from `keep_nodes` and all their incident edges are
    /// dropped. Duplicate entries in `keep_nodes` are ignored.
    pub fn induced_subgraph(&self, keep_nodes: &[NodeId]) -> InducedSubgraph {
        let mut old_to_new = vec![None; self.num_nodes];
        let mut new_to_old = Vec::new();
        for &v in keep_nodes {
            if old_to_new[v.index()].is_none() {
                old_to_new[v.index()] = Some(NodeId::from_index(new_to_old.len()));
                new_to_old.push(v);
            }
        }
        let mut b = GraphBuilder::new(new_to_old.len());
        let mut edge_to_old = Vec::new();
        for er in self.edges() {
            if let (Some(nu), Some(nv)) = (old_to_new[er.u.index()], old_to_new[er.v.index()]) {
                b.add_edge(nu, nv);
                edge_to_old.push(er.id);
            }
        }
        InducedSubgraph {
            graph: b.build(),
            node_to_old: new_to_old,
            node_from_old: old_to_new,
            edge_to_old,
        }
    }
}

/// Result of [`Graph::induced_subgraph`]: the subgraph plus id mappings.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced subgraph with densely renumbered ids.
    pub graph: Graph,
    /// Maps new node ids (by index) to original node ids.
    pub node_to_old: Vec<NodeId>,
    /// Maps original node ids (by index) to new node ids, `None` if dropped.
    pub node_from_old: Vec<Option<NodeId>>,
    /// Maps new edge ids (by index) to original edge ids.
    pub edge_to_old: Vec<EdgeId>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.num_nodes)
            .field("m", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.density(), 1.0);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = Graph::from_edges(4, [(2, 0), (3, 1), (0, 1)]);
        for v in g.nodes() {
            let heads = g.heads(v);
            assert!(heads.windows(2).all(|w| w[0] < w[1]));
            for &u in heads {
                assert!(g.heads(u).contains(&v));
            }
        }
    }

    #[test]
    fn slices_agree_with_neighbor_iterator() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 4)]);
        for v in g.nodes() {
            assert_eq!(g.neighbors(v).len(), g.degree(v));
            for (port, nb) in g.neighbors(v).enumerate() {
                assert_eq!(nb.node, g.heads(v)[port]);
                assert_eq!(nb.edge, g.edge_ids(v)[port]);
                assert_eq!(g.neighbor(v, port), nb);
                assert_eq!(g.port_to(v, nb.node), Some(port));
                // The directed-edge id is dense and consistent.
                let dir = g.first_out()[v.index()] as usize + port;
                assert!(dir < 2 * g.num_edges());
            }
        }
    }

    #[test]
    fn find_edge_and_opposite() {
        let g = triangle();
        let e = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(g.find_edge(NodeId(2), NodeId(0)), Some(e));
        assert_eq!(g.opposite(e, NodeId(0)), NodeId(2));
        assert_eq!(g.opposite(e, NodeId(2)), NodeId(0));
        assert_eq!(g.find_edge(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn endpoints_are_canonical() {
        let g = Graph::from_edges(3, [(2, 1)]);
        assert_eq!(g.endpoints(EdgeId(0)), (NodeId(1), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn opposite_panics_for_non_endpoint() {
        let g = triangle();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        g.opposite(e, NodeId(2));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let sub = g.induced_subgraph(&[NodeId(0), NodeId(1), NodeId(4)]);
        assert_eq!(sub.graph.num_nodes(), 3);
        // edges kept: (0,1) and (0,4)
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.node_to_old.len(), 3);
        assert_eq!(sub.node_from_old[2], None);
        for (new_e, old_e) in sub.edge_to_old.iter().enumerate() {
            let (u, v) = sub.graph.endpoints(EdgeId(new_e as u32));
            let (ou, ov) = g.endpoints(*old_e);
            let mapped = (sub.node_to_old[u.index()], sub.node_to_old[v.index()]);
            assert!(mapped == (ou, ov) || mapped == (ov, ou));
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
        assert_eq!(g.nodes().count(), 0);
    }
}
