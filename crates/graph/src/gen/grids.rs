//! Grid-like families: planar grids, king grids, and tori.

use crate::{Graph, GraphBuilder, NodeId};

/// Node id of grid cell `(r, c)` in an `rows × cols` grid, row-major.
#[inline]
fn cell(cols: usize, r: usize, c: usize) -> NodeId {
    NodeId((r * cols + c) as u32)
}

/// The `rows × cols` planar grid. Minor density `δ < 3` (planar); diameter
/// `rows + cols - 2`.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(cell(cols, r, c), cell(cols, r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(cell(cols, r, c), cell(cols, r + 1, c));
            }
        }
    }
    b.build()
}

/// The `rows × cols` king grid (grid plus diagonals). Still planar when
/// only one diagonal per cell is added — here we add both, giving a
/// 1-planar graph with `δ = O(1)`; diameter `max(rows, cols) - 1`.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid_king(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(cell(cols, r, c), cell(cols, r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(cell(cols, r, c), cell(cols, r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols {
                b.add_edge(cell(cols, r, c), cell(cols, r + 1, c + 1));
                b.add_edge(cell(cols, r, c + 1), cell(cols, r + 1, c));
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus (grid with wraparound in both dimensions).
/// Genus 1, so `δ = O(1)` (toroidal graphs have at most `3n` edges and the
/// class is minor-closed); diameter `⌊rows/2⌋ + ⌊cols/2⌋`.
///
/// # Panics
///
/// Panics if either dimension is `< 3` (wraparound would create parallel
/// edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus dimensions must be at least 3"
    );
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(cell(cols, r, c), cell(cols, r, (c + 1) % cols));
            b.add_edge(cell(cols, r, c), cell(cols, (r + 1) % rows, c));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, diameter};

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(components::is_connected(&g));
        assert_eq!(diameter::exact_diameter(&g), 5);
        assert!(g.density() < 3.0); // planar bound
    }

    #[test]
    fn one_by_one_grid() {
        let g = grid(1, 1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn king_grid_diameter() {
        let g = grid_king(4, 4);
        assert_eq!(diameter::exact_diameter(&g), 3);
        assert!(components::is_connected(&g));
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 5);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_edges(), 2 * 20);
        assert_eq!(diameter::exact_diameter(&g), 2 + 2);
        assert!(g.density() <= 3.0); // toroidal bound m <= 3n
    }
}
