//! Graph-family generators with known or controllable minor density.
//!
//! Every experiment in the workspace sweeps some parameter (δ, D, genus g,
//! treewidth k, n) over a family from this module. Each generator documents
//! the analytic bound on the minor density `δ(G)` that the experiments rely
//! on.

mod adversarial;
mod basic;
mod grids;
mod lower_bound;
mod partitions;
mod random;
mod structured;

pub use adversarial::{comb, CombInstance};
pub use basic::{complete, complete_bipartite, cycle, path, star, wheel};
pub use grids::{grid, grid_king, torus};
pub use lower_bound::{lower_bound_topology, LowerBoundTopology};
pub use partitions::{
    random_connected_parts, random_partial_parts, rows_of_grid, singleton_parts, voronoi_parts,
    voronoi_parts_seeded,
};
pub use random::{gnm_connected, grid_plus_random_edges, ring_with_matchings, road_like};
pub use structured::{binary_tree, caterpillar, grid_of_cliques, ktree, path_power};
