//! Randomized families: connected G(n,m), genus-bounded planar+chords, and
//! expander-like rings.

use crate::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly-ish random connected graph with `n` nodes and `m` edges:
/// a random spanning tree (random permutation + random attachment) plus
/// `m - (n-1)` distinct random extra edges.
///
/// # Panics
///
/// Panics if `m < n - 1` or `m` exceeds `n(n-1)/2`.
pub fn gnm_connected(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!(m + 1 >= n, "too few edges for connectivity");
    assert!(
        m <= n * n.saturating_sub(1) / 2,
        "too many edges for a simple graph"
    );
    let mut b = GraphBuilder::new(n);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.add_edge(NodeId(perm[i]), NodeId(perm[j]));
    }
    let mut attempts = 0usize;
    while b.num_edges() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !b.has_edge(NodeId(u), NodeId(v)) {
            b.add_edge(NodeId(u), NodeId(v));
        }
        attempts += 1;
        assert!(
            attempts < 100 * m + 10_000,
            "edge sampling did not converge; graph too dense"
        );
    }
    b.build()
}

/// A planar `rows × cols` grid plus `extra` random chords.
///
/// Adding one edge increases the genus by at most one, so the result has
/// genus at most `extra` — the synthetic genus-`g` family for Corollary 1.4
/// (experiment E8). Its minor density grows as `O(√extra)`.
///
/// # Panics
///
/// Panics if the requested chords exceed the number of absent node pairs.
pub fn grid_plus_random_edges(rows: usize, cols: usize, extra: usize, rng: &mut impl Rng) -> Graph {
    let g = super::grid(rows, cols);
    let n = g.num_nodes();
    assert!(
        g.num_edges() + extra <= n * (n - 1) / 2,
        "too many extra edges"
    );
    let mut b = GraphBuilder::new(n);
    for er in g.edges() {
        b.add_edge(er.u, er.v);
    }
    let target = g.num_edges() + extra;
    let mut attempts = 0usize;
    while b.num_edges() < target {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !b.has_edge(NodeId(u), NodeId(v)) {
            b.add_edge(NodeId(u), NodeId(v));
        }
        attempts += 1;
        assert!(
            attempts < 100 * target + 10_000,
            "sampling did not converge"
        );
    }
    b.build()
}

/// A cycle on `n` nodes plus `r` random perfect matchings (expander-like for
/// `r >= 2`). High minor density (`δ = Θ̃(√n)` in expectation for constant
/// `r`), low diameter — the *negative control* family on which
/// tree-restricted shortcuts are poor and the `D + √n` baseline is the right
/// answer.
///
/// # Panics
///
/// Panics if `n` is odd or `n < 4`.
pub fn ring_with_matchings(n: usize, r: usize, rng: &mut impl Rng) -> Graph {
    assert!(n >= 4 && n.is_multiple_of(2), "need an even n >= 4");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
    }
    for _ in 0..r {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(rng);
        for pair in perm.chunks(2) {
            let (u, v) = (NodeId(pair[0]), NodeId(pair[1]));
            if !b.has_edge(u, v) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// A deterministic seeded near-planar "road-like" network on a
/// `rows × cols` lattice — the scale-up family for n = 10⁶–10⁷ ingestion
/// benchmarks.
///
/// Construction (all randomness from a [`SmallRng`](rand::rngs::SmallRng)
/// seeded with `seed`, so the same parameters always yield the same graph):
///
/// - every horizontal lattice edge is kept (streets stay traversable),
/// - the column-0 vertical edges are all kept (an arterial spine), which
///   together with the streets makes the graph **connected by
///   construction**,
/// - each remaining vertical edge appears with probability 0.45,
/// - each cell gains its `(r, c)–(r+1, c+1)` diagonal with probability
///   0.05.
///
/// Only one diagonal orientation per cell is ever added, so the result
/// embeds in the plane (each diagonal drawn inside its cell) — the graph is
/// **planar**, hence `K₅`-minor-free with minor density `δ(G) < 3`, exactly
/// the dense-minor-excluding regime of Theorem 1.1. Expected size is
/// `m ≈ 1.5 · n`, matching real road networks.
pub fn road_like(rows: usize, cols: usize, seed: u64) -> Graph {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    assert!(rows >= 1 && cols >= 1, "need a non-empty lattice");
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols - 1 {
            b.add_edge(id(r, c), id(r, c + 1));
        }
    }
    for r in 0..rows - 1 {
        b.add_edge(id(r, 0), id(r + 1, 0));
    }
    for r in 0..rows - 1 {
        for c in 1..cols {
            if rng.gen_bool(0.45) {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    for r in 0..rows - 1 {
        for c in 0..cols - 1 {
            if rng.gen_bool(0.05) {
                b.add_edge(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_is_connected_with_exact_m() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gnm_connected(50, 80, &mut rng);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 80);
        assert!(components::is_connected(&g));
    }

    #[test]
    fn gnm_tree_case() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = gnm_connected(20, 19, &mut rng);
        assert_eq!(g.num_edges(), 19);
        assert!(components::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "too few edges")]
    fn gnm_rejects_underconnected() {
        let mut rng = SmallRng::seed_from_u64(5);
        gnm_connected(10, 5, &mut rng);
    }

    #[test]
    fn grid_plus_edges_counts() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = grid_plus_random_edges(5, 5, 7, &mut rng);
        let base = super::super::grid(5, 5);
        assert_eq!(g.num_edges(), base.num_edges() + 7);
        assert!(components::is_connected(&g));
    }

    #[test]
    fn road_like_is_connected_deterministic_and_sparse() {
        let g = road_like(20, 30, 42);
        assert_eq!(g.num_nodes(), 600);
        assert!(components::is_connected(&g));
        // Same seed → bit-identical; different seed → (almost surely) not.
        assert_eq!(g, road_like(20, 30, 42));
        assert_ne!(g, road_like(20, 30, 43));
        // Planar bound: m <= 3n - 6.
        assert!(g.num_edges() <= 3 * g.num_nodes() - 6);
        // Road-like sparsity: every horizontal street plus ~half the
        // verticals lands well above the tree bound and below 2n.
        assert!(g.num_edges() > g.num_nodes());
        assert!(g.num_edges() < 2 * g.num_nodes());
    }

    #[test]
    fn road_like_degenerate_lattices() {
        assert!(components::is_connected(&road_like(1, 7, 0)));
        assert!(components::is_connected(&road_like(7, 1, 0)));
        assert_eq!(road_like(1, 1, 0).num_edges(), 0);
    }

    #[test]
    fn ring_with_matchings_connected_and_low_diameter() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = ring_with_matchings(64, 2, &mut rng);
        assert!(components::is_connected(&g));
        assert!(g.num_edges() >= 64);
        let b = crate::diameter::diameter_bounds(&g, NodeId(0));
        assert!(b.upper < 64 / 2); // far below the plain ring's diameter
    }
}
