//! Helpers that produce part collections (disjoint connected node sets) for
//! part-wise aggregation instances.

use crate::{bfs, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Every node its own part — the starting fragments of Boruvka's algorithm.
pub fn singleton_parts(g: &Graph) -> Vec<Vec<NodeId>> {
    g.nodes().map(|v| vec![v]).collect()
}

/// The rows of a `rows × cols` grid as parts (each row is an induced path).
pub fn rows_of_grid(rows: usize, cols: usize) -> Vec<Vec<NodeId>> {
    (0..rows)
        .map(|r| (0..cols).map(|c| NodeId((r * cols + c) as u32)).collect())
        .collect()
}

/// Partitions the whole vertex set into `target_parts` connected parts by
/// Voronoi growth from random seeds (multi-source BFS; each node joins the
/// part of its nearest seed, ties broken by BFS order).
///
/// Every part induces a connected subgraph, parts are disjoint and cover the
/// component(s) containing seeds. On a connected graph the parts cover all
/// nodes. The actual number of parts can be lower than requested if seeds
/// collide (it never is, since seeds are sampled without replacement).
///
/// # Panics
///
/// Panics if `target_parts` is 0 or exceeds the node count.
pub fn random_connected_parts(
    g: &Graph,
    target_parts: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    assert!(target_parts >= 1 && target_parts <= n, "bad part count");
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.shuffle(rng);
    let seeds = &nodes[..target_parts];

    // Multi-source BFS where each visited node inherits the part of the
    // node that discovered it — Voronoi cells are connected.
    let mut part_of = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for (i, &s) in seeds.iter().enumerate() {
        part_of[s.index()] = i as u32;
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        for &next in g.heads(u) {
            if part_of[next.index()] == u32::MAX {
                part_of[next.index()] = part_of[u.index()];
                queue.push_back(next);
            }
        }
    }
    let mut parts = vec![Vec::new(); target_parts];
    for v in g.nodes() {
        let p = part_of[v.index()];
        if p != u32::MAX {
            parts[p as usize].push(v);
        }
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// Grows `target_parts` connected parts that each cover roughly
/// `coverage` fraction of their Voronoi cell, leaving the rest of the graph
/// unassigned. Useful for instances where parts do not cover `V`.
///
/// # Panics
///
/// Panics like [`random_connected_parts`]; additionally requires
/// `0.0 < coverage <= 1.0`.
pub fn random_partial_parts(
    g: &Graph,
    target_parts: usize,
    coverage: f64,
    rng: &mut impl Rng,
) -> Vec<Vec<NodeId>> {
    assert!(coverage > 0.0 && coverage <= 1.0, "bad coverage");
    let full = random_connected_parts(g, target_parts, rng);
    full.into_iter()
        .map(|cell| {
            let keep = ((cell.len() as f64 * coverage).ceil() as usize).max(1);
            // Keep a connected prefix: BFS inside the cell from its seed.
            let mut inside = vec![false; g.num_nodes()];
            for &v in &cell {
                inside[v.index()] = true;
            }
            let res = bfs::bfs_filtered(g, &cell[..1], |_, nxt| inside[nxt.index()]);
            res.order.into_iter().take(keep).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, gen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn singletons_cover_everything() {
        let g = gen::path(5);
        let parts = singleton_parts(&g);
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn grid_rows_are_connected_paths() {
        let g = gen::grid(4, 6);
        let parts = rows_of_grid(4, 6);
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert_eq!(p.len(), 6);
            assert!(components::induces_connected(&g, p));
        }
    }

    #[test]
    fn voronoi_parts_partition_connected_graph() {
        let g = gen::grid(8, 8);
        let mut rng = SmallRng::seed_from_u64(11);
        let parts = random_connected_parts(&g, 7, &mut rng);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 64);
        let mut seen = [false; 64];
        for p in &parts {
            assert!(components::induces_connected(&g, p));
            for &v in p {
                assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
        }
    }

    #[test]
    fn partial_parts_respect_coverage() {
        let g = gen::grid(6, 6);
        let mut rng = SmallRng::seed_from_u64(13);
        let parts = random_partial_parts(&g, 4, 0.5, &mut rng);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert!(total < 36);
        for p in &parts {
            assert!(!p.is_empty());
            assert!(components::induces_connected(&g, p));
        }
    }

    #[test]
    #[should_panic(expected = "bad part count")]
    fn rejects_zero_parts() {
        let g = gen::path(3);
        let mut rng = SmallRng::seed_from_u64(1);
        random_connected_parts(&g, 0, &mut rng);
    }
}
