//! Helpers that produce part collections (disjoint connected node sets) for
//! part-wise aggregation instances.

use crate::{bfs, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Every node its own part — the starting fragments of Boruvka's algorithm.
pub fn singleton_parts(g: &Graph) -> Vec<Vec<NodeId>> {
    g.nodes().map(|v| vec![v]).collect()
}

/// The rows of a `rows × cols` grid as parts (each row is an induced path).
pub fn rows_of_grid(rows: usize, cols: usize) -> Vec<Vec<NodeId>> {
    (0..rows)
        .map(|r| (0..cols).map(|c| NodeId((r * cols + c) as u32)).collect())
        .collect()
}

/// Voronoi cells of the given seed nodes: each node joins the part of its
/// nearest seed (multi-source BFS; each visited node inherits the part of
/// the node that discovered it, so every cell is connected).
///
/// **Determinism.** The output is a pure function of `(g, seeds)`: ties
/// between equidistant seeds break by BFS discovery order, which is fixed
/// by the seed order and the CSR adjacency order (neighbors sorted by id).
/// Re-running with the same graph and the same seed slice — including seed
/// *order* — reproduces the parts exactly; this is what lets a bench or a
/// server reproduce a "random" partition from a recorded seed list. For
/// one-`u64` reproducibility see [`voronoi_parts_seeded`].
///
/// Parts are disjoint, each induces a connected subgraph, and together
/// they cover exactly the component(s) containing seeds (all of `V` on a
/// connected graph). Duplicate seeds collapse: the first occurrence wins
/// and later duplicates yield empty cells, which are dropped.
///
/// # Panics
///
/// Panics if `seeds` is empty or contains an out-of-range node.
pub fn voronoi_parts(g: &Graph, seeds: &[NodeId]) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    assert!(!seeds.is_empty(), "bad part count");
    let mut part_of = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for (i, &s) in seeds.iter().enumerate() {
        assert!(s.index() < n, "seed {s:?} out of range");
        if part_of[s.index()] == u32::MAX {
            part_of[s.index()] = i as u32;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &next in g.heads(u) {
            if part_of[next.index()] == u32::MAX {
                part_of[next.index()] = part_of[u.index()];
                queue.push_back(next);
            }
        }
    }
    let mut parts = vec![Vec::new(); seeds.len()];
    for v in g.nodes() {
        let p = part_of[v.index()];
        if p != u32::MAX {
            parts[p as usize].push(v);
        }
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// [`voronoi_parts`] with seeds sampled without replacement from a
/// [`SmallRng`](rand::rngs::SmallRng) initialized with `seed` — the whole
/// partition is reproducible from the single `u64`, which is how bench
/// partition sources are recorded in `BENCH_*.json`.
///
/// # Panics
///
/// Panics if `target_parts` is 0 or exceeds the node count.
pub fn voronoi_parts_seeded(g: &Graph, target_parts: usize, seed: u64) -> Vec<Vec<NodeId>> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    random_connected_parts(g, target_parts, &mut rng)
}

/// Partitions the whole vertex set into `target_parts` connected parts by
/// Voronoi growth from random seeds — [`voronoi_parts`] over
/// `target_parts` nodes sampled without replacement from `rng`.
///
/// The actual number of parts can be lower than requested if seeds
/// collide (it never is, since seeds are sampled without replacement).
///
/// # Panics
///
/// Panics if `target_parts` is 0 or exceeds the node count.
pub fn random_connected_parts(
    g: &Graph,
    target_parts: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    assert!(target_parts >= 1 && target_parts <= n, "bad part count");
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.shuffle(rng);
    voronoi_parts(g, &nodes[..target_parts])
}

/// Grows `target_parts` connected parts that each cover roughly
/// `coverage` fraction of their Voronoi cell, leaving the rest of the graph
/// unassigned. Useful for instances where parts do not cover `V`.
///
/// # Panics
///
/// Panics like [`random_connected_parts`]; additionally requires
/// `0.0 < coverage <= 1.0`.
pub fn random_partial_parts(
    g: &Graph,
    target_parts: usize,
    coverage: f64,
    rng: &mut impl Rng,
) -> Vec<Vec<NodeId>> {
    assert!(coverage > 0.0 && coverage <= 1.0, "bad coverage");
    let full = random_connected_parts(g, target_parts, rng);
    full.into_iter()
        .map(|cell| {
            let keep = ((cell.len() as f64 * coverage).ceil() as usize).max(1);
            // Keep a connected prefix: BFS inside the cell from its seed.
            let mut inside = vec![false; g.num_nodes()];
            for &v in &cell {
                inside[v.index()] = true;
            }
            let res = bfs::bfs_filtered(g, &cell[..1], |_, nxt| inside[nxt.index()]);
            res.order.into_iter().take(keep).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, gen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn singletons_cover_everything() {
        let g = gen::path(5);
        let parts = singleton_parts(&g);
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn grid_rows_are_connected_paths() {
        let g = gen::grid(4, 6);
        let parts = rows_of_grid(4, 6);
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert_eq!(p.len(), 6);
            assert!(components::induces_connected(&g, p));
        }
    }

    #[test]
    fn voronoi_parts_partition_connected_graph() {
        let g = gen::grid(8, 8);
        let mut rng = SmallRng::seed_from_u64(11);
        let parts = random_connected_parts(&g, 7, &mut rng);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 64);
        let mut seen = [false; 64];
        for p in &parts {
            assert!(components::induces_connected(&g, p));
            for &v in p {
                assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
        }
    }

    #[test]
    fn partial_parts_respect_coverage() {
        let g = gen::grid(6, 6);
        let mut rng = SmallRng::seed_from_u64(13);
        let parts = random_partial_parts(&g, 4, 0.5, &mut rng);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert!(total < 36);
        for p in &parts {
            assert!(!p.is_empty());
            assert!(components::induces_connected(&g, p));
        }
    }

    #[test]
    fn voronoi_parts_are_deterministic_in_the_seed_list() {
        let g = gen::grid(7, 9);
        let seeds = [NodeId(3), NodeId(40), NodeId(61)];
        let a = voronoi_parts(&g, &seeds);
        let b = voronoi_parts(&g, &seeds);
        assert_eq!(a, b, "same seed list must reproduce the parts");
        assert_eq!(a.len(), 3);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, 63);
        for p in &a {
            assert!(components::induces_connected(&g, p));
        }
        // Seed *order* is part of the contract: it decides equidistant ties.
        let swapped = voronoi_parts(&g, &[NodeId(40), NodeId(3), NodeId(61)]);
        let total: usize = swapped.iter().map(Vec::len).sum();
        assert_eq!(total, 63);
    }

    #[test]
    fn voronoi_parts_seeded_reproduces_from_one_u64() {
        let g = gen::torus(6, 6);
        let a = voronoi_parts_seeded(&g, 5, 42);
        let b = voronoi_parts_seeded(&g, 5, 42);
        assert_eq!(a, b, "one u64 must pin the whole partition");
        assert_eq!(a.len(), 5);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, 36);
        for p in &a {
            assert!(components::induces_connected(&g, p));
        }
    }

    #[test]
    fn voronoi_duplicate_seeds_collapse() {
        let g = gen::path(6);
        let parts = voronoi_parts(&g, &[NodeId(2), NodeId(2), NodeId(5)]);
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    #[should_panic(expected = "bad part count")]
    fn rejects_zero_parts() {
        let g = gen::path(3);
        let mut rng = SmallRng::seed_from_u64(1);
        random_connected_parts(&g, 0, &mut rng);
    }
}
