//! Adversarial instances for the shortcut construction.

use crate::{Graph, GraphBuilder, NodeId};

/// A part-wise aggregation instance that forces Case (II) of Theorem 3.1.
#[derive(Clone, Debug)]
pub struct CombInstance {
    /// The comb graph.
    pub graph: Graph,
    /// The `k` chain parts.
    pub parts: Vec<Vec<NodeId>>,
}

/// The "comb": a root (node 0), `t` middle nodes, `k` leaves under each
/// middle node, and `k` chain parts where part `p` connects the `p`-th leaf
/// of every middle node.
///
/// A BFS tree from the root has depth 2, so the Theorem 3.1 threshold is
/// `c = 16δ̂`; with `k >= c` parts every root edge overcongests and every
/// part has `B`-degree `t`. For `t > 8δ̂` this lands in Case (II) and the
/// witness extraction must produce a minor of density `> δ̂` — the comb
/// contains a `K_{k,t}` minor of density `kt/(k+t)`.
///
/// # Panics
///
/// Panics if `t < 2` or `k < 1`.
pub fn comb(t: usize, k: usize) -> CombInstance {
    assert!(t >= 2, "comb needs at least two middle nodes");
    assert!(k >= 1, "comb needs at least one part");
    let n = 1 + t + t * k;
    let mut b = GraphBuilder::new(n);
    let leaf = |i: usize, p: usize| NodeId((1 + t + i * k + p) as u32);
    for i in 0..t {
        b.add_edge(NodeId(0), NodeId((1 + i) as u32));
        for p in 0..k {
            b.add_edge(NodeId((1 + i) as u32), leaf(i, p));
        }
    }
    for p in 0..k {
        for i in 0..t - 1 {
            b.add_edge(leaf(i, p), leaf(i + 1, p));
        }
    }
    let graph = b.build();
    let parts = (0..k)
        .map(|p| (0..t).map(|i| leaf(i, p)).collect())
        .collect();
    CombInstance { graph, parts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, diameter};

    #[test]
    fn comb_shape() {
        let c = comb(10, 20);
        assert_eq!(c.graph.num_nodes(), 1 + 10 + 200);
        assert_eq!(c.parts.len(), 20);
        assert!(components::is_connected(&c.graph));
        for p in &c.parts {
            assert_eq!(p.len(), 10);
            assert!(components::induces_connected(&c.graph, p));
        }
    }

    #[test]
    fn comb_diameter_is_small() {
        let c = comb(6, 8);
        assert!(diameter::exact_diameter(&c.graph) <= 4);
    }

    #[test]
    #[should_panic(expected = "two middle")]
    fn rejects_tiny_comb() {
        comb(1, 5);
    }
}
