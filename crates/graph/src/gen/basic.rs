//! Elementary families: paths, cycles, stars, cliques, wheels.

use crate::{Graph, GraphBuilder, NodeId};

/// The path `P_n` on `n` nodes (`n - 1` edges). Minor density `δ < 1`;
/// diameter `n - 1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId((i - 1) as u32), NodeId(i as u32));
    }
    b.build()
}

/// The cycle `C_n` on `n >= 3` nodes. Minor density `δ = 1`; diameter
/// `⌊n/2⌋`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
    }
    b.build()
}

/// The star `K_{1,n-1}`: node 0 is the hub. Minor density `δ < 1`;
/// diameter 2.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star needs at least 1 node");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId(0), NodeId(i as u32));
    }
    b.build()
}

/// The complete graph `K_n`. Minor density `δ = (n-1)/2`; diameter 1.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId(i as u32), NodeId(j as u32));
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (left side `0..a`, right side
/// `a..a+b`). Diameter 2 (for `a, b >= 1`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(NodeId(i as u32), NodeId((a + j) as u32));
        }
    }
    builder.build()
}

/// The wheel `W_n`: hub node 0 plus a cycle on nodes `1..n`.
///
/// This is the paper's Section 2 example: diameter 2 but the rim — a single
/// part — has induced diameter `Θ(n)`, which is why part-wise aggregation
/// needs shortcuts. Planar, so `δ < 3`.
///
/// # Panics
///
/// Panics if `n < 4` (the rim needs at least 3 nodes).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs at least 4 nodes");
    let rim = n - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..rim {
        let u = NodeId((1 + i) as u32);
        let v = NodeId((1 + (i + 1) % rim) as u32);
        b.add_edge(u, v);
        b.add_edge(NodeId(0), u);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, diameter};

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(diameter::exact_diameter(&g), 5);
    }

    #[test]
    fn single_node_path() {
        let g = path(1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(diameter::exact_diameter(&g), 3);
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.degree(NodeId(0)), 4);
        assert_eq!(diameter::exact_diameter(&g), 2);
    }

    #[test]
    fn complete_density() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.density(), 2.5); // (n-1)/2
        assert_eq!(diameter::exact_diameter(&g), 1);
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(diameter::exact_diameter(&g), 2);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(10);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 18); // 9 rim + 9 spokes
        assert_eq!(diameter::exact_diameter(&g), 2);
        assert!(components::is_connected(&g));
        // Rim without the hub is a long cycle.
        let rim: Vec<_> = (1..10).map(NodeId).collect();
        assert!(components::induces_connected(&g, &rim));
    }
}
