//! The lower-bound topology of Lemma 3.2 (Figure 3.2 of the paper).
//!
//! For parameters `δ′, D′` the construction yields a graph of diameter at
//! most `D′` whose every minor has density below `δ′`, together with a
//! collection of path parts (the "rows") on which *any* partial shortcut has
//! quality at least `(δ′ - 3)·D′ / 6 = Θ(δ′D′)`.

use crate::{Graph, GraphBuilder, NodeId};
use serde::{Deserialize, Serialize};

/// The generated Lemma 3.2 instance: the graph, the row parts, and the
/// internal parameters `δ = δ′ - 2`, `k`, `D = kδ`.
///
/// **Erratum note.** The paper sets `k = ⌊D′/(2δ)⌋`, but its own distance
/// argument only bounds the *radius* by `1.5D + 1` (via the central top-path
/// node), i.e. the diameter by `3D + 2`, which can exceed `D′`. We instead
/// use `k = ⌊(D′-2)/(3δ)⌋`, which guarantees diameter `<= 3kδ + 2 <= D′`
/// while preserving the stated `Θ(δ′D′)` shortcut-quality lower bound
/// (`(δ-1)D/2` with `D ≈ D′/3` equals the paper's `(δ′-3)D′/6`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LowerBoundTopology {
    /// The topology `G`.
    pub graph: Graph,
    /// The nodes `p_1, …, p_{(δ-1)k+1}` of the special top path, in order.
    pub top_path: Vec<NodeId>,
    /// The `(δ-1)D + 1` row paths — the parts of the hard part-wise
    /// aggregation instance.
    pub rows: Vec<Vec<NodeId>>,
    /// Requested minor-density bound `δ′` (every minor has density `< δ′`).
    pub delta_prime: u32,
    /// Requested diameter bound `D′` (the graph has diameter `<= D′`).
    pub d_prime: u32,
    /// Internal `δ = δ′ - 2`.
    pub delta: u32,
    /// Internal `k = ⌊(D′ - 2) / (3δ)⌋` (see the erratum note on the type).
    pub k: u32,
    /// Internal `D = kδ`.
    pub d: u32,
}

impl LowerBoundTopology {
    /// The paper's asymptotic reference bound `(δ′ - 3)·D′ / 6`. With our
    /// corrected `k` (see the erratum note) the *guaranteed* bound is
    /// [`internal_lower_bound`](Self::internal_lower_bound), which matches
    /// this up to rounding.
    pub fn quality_lower_bound(&self) -> f64 {
        f64::from(self.delta_prime - 3) * f64::from(self.d_prime) / 6.0
    }

    /// The guaranteed bound `(δ - 1)·D / 2` from the Lemma 3.2 proof: any
    /// partial shortcut for [`rows`](Self::rows) has congestion or dilation
    /// at least this.
    pub fn internal_lower_bound(&self) -> f64 {
        f64::from(self.delta - 1) * f64::from(self.d) / 2.0
    }
}

/// Builds the Lemma 3.2 lower-bound topology for `δ′` and `D′`.
///
/// Following the paper's proof: one top path of length `(δ-1)k`, plus
/// `(δ-1)D + 1` rows of length `(δ-1)D` each; every `D`-th column carries a
/// vertical path, and every `D`-th row of each such column connects to the
/// corresponding top-path node.
///
/// # Panics
///
/// Panics unless `5 <= δ′` and `3·δ′ - 4 <= D′` (slightly stronger than the
/// paper's `δ′ <= D′/2`, required for the corrected diameter guarantee; see
/// the erratum note on [`LowerBoundTopology`]).
pub fn lower_bound_topology(delta_prime: u32, d_prime: u32) -> LowerBoundTopology {
    assert!(delta_prime >= 5, "Lemma 3.2 needs δ′ >= 5");
    assert!(
        3 * delta_prime - 4 <= d_prime,
        "corrected Lemma 3.2 needs 3δ′ - 4 <= D′ (paper: δ′ <= D′/2)"
    );
    let delta = delta_prime - 2;
    let k = (d_prime - 2) / (3 * delta);
    let d = k * delta;
    assert!(k >= 1 && d >= 1);

    let top_len = ((delta - 1) * k + 1) as usize; // number of p-nodes
    let side = ((delta - 1) * d + 1) as usize; // rows and row length (nodes)
    let n = top_len + side * side;

    // p_t (1-based t) -> node t-1; v_{i,j} (1-based) -> top_len + (i-1)*side + (j-1)
    let p = |t: u32| NodeId(t - 1);
    let v = |i: u32, j: u32| NodeId((top_len + (i as usize - 1) * side + (j as usize - 1)) as u32);

    let mut b = GraphBuilder::new(n);
    // Top path.
    for t in 1..top_len as u32 {
        b.add_edge(p(t), p(t + 1));
    }
    // Row paths.
    for i in 1..=side as u32 {
        for j in 1..side as u32 {
            b.add_edge(v(i, j), v(i, j + 1));
        }
    }
    // Vertical paths on every D-th column (columns (j-1)D + 1 for j in [δ]).
    for j in 1..=delta {
        let col = (j - 1) * d + 1;
        for i in 1..side as u32 {
            b.add_edge(v(i, col), v(i + 1, col));
        }
    }
    // Connections to the top path: v_{(j'-1)D+1, (j-1)D+1} ~ p_{(j-1)k+1}.
    for j in 1..=delta {
        let col = (j - 1) * d + 1;
        let pt = (j - 1) * k + 1;
        for jp in 1..=delta {
            let row = (jp - 1) * d + 1;
            b.add_edge(v(row, col), p(pt));
        }
    }

    let graph = b.build();
    let top_path = (1..=top_len as u32).map(p).collect();
    let rows = (1..=side as u32)
        .map(|i| (1..=side as u32).map(|j| v(i, j)).collect())
        .collect();

    LowerBoundTopology {
        graph,
        top_path,
        rows,
        delta_prime,
        d_prime,
        delta,
        k,
        d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, diameter};

    #[test]
    fn small_instance_matches_paper_parameters() {
        // δ′ = 5, D′ = 30 → δ = 3, corrected k = ⌊28/9⌋ = 3, D = 9.
        let lb = lower_bound_topology(5, 30);
        assert_eq!(lb.delta, 3);
        assert_eq!(lb.k, 3);
        assert_eq!(lb.d, 9);
        let side = (lb.delta - 1) * lb.d + 1;
        assert_eq!(lb.rows.len(), side as usize);
        assert_eq!(lb.rows[0].len(), side as usize);
        assert_eq!(lb.top_path.len(), ((lb.delta - 1) * lb.k + 1) as usize);
    }

    #[test]
    fn graph_is_connected_with_claimed_diameter() {
        let lb = lower_bound_topology(5, 30);
        assert!(components::is_connected(&lb.graph));
        let bounds = diameter::diameter_bounds(&lb.graph, lb.top_path[0]);
        assert!(
            bounds.lower <= lb.d_prime,
            "double-sweep lower bound {} exceeds D′ = {}",
            bounds.lower,
            lb.d_prime
        );
        // The corrected construction guarantees diameter <= 3D + 2 <= D′.
        let exact = diameter::exact_diameter(&lb.graph);
        assert!(exact <= lb.d_prime, "diameter {exact} > D′ {}", lb.d_prime);
        assert!(exact <= 3 * lb.d + 2);
    }

    #[test]
    fn rows_are_disjoint_connected_paths() {
        let lb = lower_bound_topology(5, 30);
        let mut seen = vec![false; lb.graph.num_nodes()];
        for row in &lb.rows {
            for &node in row {
                assert!(!seen[node.index()], "rows must be disjoint");
                seen[node.index()] = true;
            }
            assert!(components::induces_connected(&lb.graph, row));
        }
    }

    #[test]
    fn density_stays_below_delta_prime() {
        // m/n is a lower bound on minor density; the construction promises
        // every minor has density < δ′.
        let lb = lower_bound_topology(6, 40);
        assert!(lb.graph.density() < f64::from(lb.delta_prime));
    }

    #[test]
    fn quality_lower_bound_value() {
        let lb = lower_bound_topology(5, 30);
        assert_eq!(lb.quality_lower_bound(), 2.0 * 30.0 / 6.0);
        // internal = (δ-1)D/2 = 2*9/2 = 9, same order as the paper's 10.
        assert_eq!(lb.internal_lower_bound(), 9.0);
    }

    #[test]
    #[should_panic(expected = "δ′ >= 5")]
    fn rejects_small_delta() {
        lower_bound_topology(4, 30);
    }

    #[test]
    #[should_panic(expected = "3δ′ - 4 <= D′")]
    fn rejects_small_diameter() {
        lower_bound_topology(6, 10);
    }
}
