//! Families with bounded treewidth / structured minor density.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// The complete binary tree with `depth` levels of edges (so
/// `2^(depth+1) - 1` nodes). Minor density `δ < 1`; diameter `2·depth`.
pub fn binary_tree(depth: u32) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId(((i - 1) / 2) as u32), NodeId(i as u32));
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Pathwidth 1, so `δ <= 1`; diameter `spine + 1`.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar needs a spine");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_edge(NodeId((s - 1) as u32), NodeId(s as u32));
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(NodeId(s as u32), NodeId((spine + s * legs + l) as u32));
        }
    }
    b.build()
}

/// The `k`-th power of a path on `n` nodes: `i ~ j` iff `|i - j| <= k`.
///
/// Treewidth (and pathwidth) exactly `k`, hence `δ(G) <= k` by Lemma 3.3 of
/// the paper; edge density approaches `k`, so `δ` is `Θ(k)`. Diameter
/// `⌈(n-1)/k⌉` — the family used to sweep treewidth at controlled diameter
/// (experiment E9).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn path_power(n: usize, k: usize) -> Graph {
    assert!(k > 0, "path power needs k >= 1");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for d in 1..=k {
            if i + d < n {
                b.add_edge(NodeId(i as u32), NodeId((i + d) as u32));
            }
        }
    }
    b.build()
}

/// A random `k`-tree on `n >= k + 1` nodes: start from `K_{k+1}`, then
/// attach each new node to a uniformly random existing `k`-clique.
///
/// `k`-trees are exactly the maximal treewidth-`k` graphs, so `δ(G) <= k`
/// (Lemma 3.3) while `m = kn - k(k+1)/2` makes the bound near-tight.
///
/// # Panics
///
/// Panics if `n < k + 1` or `k == 0`.
pub fn ktree(n: usize, k: usize, rng: &mut impl Rng) -> Graph {
    assert!(k > 0, "k-tree needs k >= 1");
    assert!(n > k, "k-tree needs at least k + 1 nodes");
    let mut b = GraphBuilder::new(n);
    // Base clique K_{k+1}.
    for i in 0..=k {
        for j in (i + 1)..=k {
            b.add_edge(NodeId(i as u32), NodeId(j as u32));
        }
    }
    // All k-subsets of the base clique are initial k-cliques.
    let mut cliques: Vec<Vec<u32>> = (0..=k)
        .map(|skip| (0..=k).filter(|&x| x != skip).map(|x| x as u32).collect())
        .collect();
    for v in (k + 1)..n {
        let pick = rng.gen_range(0..cliques.len());
        let clique = cliques[pick].clone();
        for &u in &clique {
            b.add_edge(NodeId(u), NodeId(v as u32));
        }
        // New k-cliques: v together with each (k-1)-subset of the picked one.
        for skip in 0..clique.len() {
            let mut c: Vec<u32> = clique
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &x)| x)
                .collect();
            c.push(v as u32);
            cliques.push(c);
        }
    }
    b.build()
}

/// A `rows × cols` grid of `r`-cliques: each grid cell is a `K_r`, and
/// adjacent cells are joined by a single edge between their first members.
///
/// Contains a `K_r` minor trivially, so `δ >= (r-1)/2`; diameter
/// `Θ(rows + cols)`. Used to sweep δ at controlled diameter.
///
/// # Panics
///
/// Panics if any dimension or `r` is 0.
pub fn grid_of_cliques(rows: usize, cols: usize, r: usize) -> Graph {
    assert!(rows > 0 && cols > 0 && r > 0, "dimensions must be positive");
    let n = rows * cols * r;
    let mut b = GraphBuilder::new(n);
    let base = |cr: usize, cc: usize| (cr * cols + cc) * r;
    for cr in 0..rows {
        for cc in 0..cols {
            let o = base(cr, cc);
            for i in 0..r {
                for j in (i + 1)..r {
                    b.add_edge(NodeId((o + i) as u32), NodeId((o + j) as u32));
                }
            }
            if cc + 1 < cols {
                b.add_edge(NodeId(o as u32), NodeId(base(cr, cc + 1) as u32));
            }
            if cr + 1 < rows {
                b.add_edge(NodeId(o as u32), NodeId(base(cr + 1, cc) as u32));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, diameter};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree(3);
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(diameter::exact_diameter(&g), 6);
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(4, 2);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 + 8);
        assert!(components::is_connected(&g));
    }

    #[test]
    fn path_power_density_near_k() {
        let g = path_power(100, 4);
        assert!(components::is_connected(&g));
        // m = 4n - 10, so density close to 4.
        assert!(g.density() > 3.5 && g.density() <= 4.0);
        assert_eq!(diameter::exact_diameter(&g), 25);
    }

    #[test]
    fn ktree_edge_count() {
        let mut rng = SmallRng::seed_from_u64(7);
        let (n, k) = (40, 3);
        let g = ktree(n, k, &mut rng);
        assert_eq!(g.num_edges(), k * n - k * (k + 1) / 2);
        assert!(components::is_connected(&g));
    }

    #[test]
    fn ktree_minimum_size_is_clique() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = ktree(4, 3, &mut rng);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn grid_of_cliques_structure() {
        let g = grid_of_cliques(2, 3, 4);
        assert_eq!(g.num_nodes(), 24);
        // 6 cliques of K_4 (6 edges) + 7 connector edges (3+4).
        assert_eq!(g.num_edges(), 6 * 6 + 7);
        assert!(components::is_connected(&g));
    }
}
