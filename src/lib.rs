//! Low-congestion shortcuts for graphs excluding dense minors.
//!
//! This is the umbrella crate of the workspace reproducing
//! *Ghaffari & Haeupler, "Low-Congestion Shortcuts for Graphs Excluding
//! Dense Minors" (PODC 2021)*. It re-exports the member crates:
//!
//! * [`graph`] — graph substrate, generators, minors ([`lcs_graph`]),
//! * [`congest`] — CONGEST-model simulator ([`lcs_congest`]),
//! * [`core`] — the shortcut construction and certificates ([`lcs_core`]),
//! * [`partwise`] — part-wise aggregation ([`lcs_partwise`]),
//! * [`algos`] — shortcut-based distributed algorithms ([`lcs_algos`]).
//!
//! # Quickstart
//!
//! ```
//! use low_congestion_shortcuts::prelude::*;
//!
//! // A 16x16 planar grid with its rows as parts.
//! let g = gen::grid(16, 16);
//! let parts = Partition::from_parts(&g, gen::rows_of_grid(16, 16)).unwrap();
//! let tree = bfs::bfs_tree(&g, NodeId(0));
//!
//! // Construct a full tree-restricted shortcut (Theorem 1.2 machinery).
//! let built = full_shortcut(&g, &tree, &parts, &ShortcutConfig::default());
//! let quality = measure_quality(&g, &parts, &tree, &built.shortcut);
//! assert!(quality.max_congestion >= 1);
//! ```

pub use lcs_algos as algos;
pub use lcs_congest as congest;
pub use lcs_core as core;
pub use lcs_graph as graph;
pub use lcs_partwise as partwise;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use lcs_core::{
        full_shortcut, measure_quality, partial_shortcut_or_witness, Partition, Shortcut,
        ShortcutConfig,
    };
    pub use lcs_graph::{bfs, diameter, gen, minor, EdgeId, Graph, NodeId, PartId, RootedTree};
}
