//! Low-congestion shortcuts for graphs excluding dense minors.
//!
//! This is the umbrella crate of the workspace reproducing
//! *Ghaffari & Haeupler, "Low-Congestion Shortcuts for Graphs Excluding
//! Dense Minors" (PODC 2021)*. It re-exports the member crates:
//!
//! * [`graph`] — graph substrate, generators, minors ([`lcs_graph`]),
//! * [`congest`] — CONGEST-model simulator ([`lcs_congest`]),
//! * [`core`] — the shortcut construction and certificates ([`lcs_core`]),
//! * [`partwise`] — part-wise aggregation ([`lcs_partwise`]),
//! * [`algos`] — shortcut-based distributed algorithms ([`lcs_algos`]),
//! * [`separator`] — nested-dissection separator trees and partition
//!   hierarchies ([`lcs_separator`]),
//!
//! and assembles the [`facade`]: the [`ShortcutSession`] API that builds
//! the shortcut once and serves it to every operation.
//!
//! # Quickstart
//!
//! ```
//! use low_congestion_shortcuts::prelude::*;
//!
//! // A 16x16 planar grid with its rows as parts, prepared once.
//! let g = gen::grid(16, 16);
//! let mut session = Session::on(&g)
//!     .tree(TreeSource::Bfs(NodeId(0)))
//!     .partition(gen::rows_of_grid(16, 16))
//!     .backend(Backend::Centralized)
//!     .build()
//!     .unwrap();
//!
//! // Serve operations from the cached artifacts: the shortcut is
//! // constructed on the first call and reused afterwards.
//! let values: Vec<u64> = (0..256).collect();
//! let max = session.aggregate(&values, AggOp::Max);
//! assert_eq!(max.result.results[0], Some(15));
//! let sum = session.aggregate(&values, AggOp::Sum);
//! assert!(sum.result.all_members_informed);
//! assert_eq!(session.cache_stats().full.builds, 1);
//!
//! // The quality report rides along in every OpReport.
//! let q = max.quality.expect("partition ops carry quality");
//! assert!(q.max_congestion >= 1);
//! ```
//!
//! [`ShortcutSession`]: facade::ShortcutSession

pub use lcs_algos as algos;
pub use lcs_congest as congest;
pub use lcs_core as core;
pub use lcs_graph as graph;
pub use lcs_partwise as partwise;
pub use lcs_separator as separator;

/// The unified serving API: [`Session`](facade::Session) builder,
/// [`ShortcutSession`](facade::ShortcutSession) with cached artifacts over
/// pluggable backends, and the operation extension traits.
///
/// One import gives the whole surface:
///
/// ```
/// use low_congestion_shortcuts::facade::*;
/// # use low_congestion_shortcuts::prelude::{gen, NodeId};
/// # use low_congestion_shortcuts::congest::protocols::AggOp;
/// let g = gen::grid(4, 4);
/// let mut session = Session::on(&g)
///     .partition(gen::rows_of_grid(4, 4))
///     .build()
///     .unwrap();
/// let values = vec![7u64; 16];
/// assert_eq!(session.aggregate(&values, AggOp::Sum).result.results[0], Some(28));
/// ```
///
/// Migration from the legacy free functions (which remain available as
/// thin wrappers):
///
/// | Legacy call | Session method |
/// |---|---|
/// | `solve_partwise(g, parts, shortcut, values, op, None, cfg)` | `session.aggregate(values, op)` |
/// | `solve_partwise(.., Some(leaders), ..)` | `session.aggregate_with_leaders(values, op, leaders)` |
/// | `gossip_aggregate(g, parts, shortcut, values, op, sim)` | `session.gossip(values, op)` |
/// | `route_multiple_unicasts(g, tree, pairs, cfg)` | `session.unicast(pairs)` |
/// | `distributed_mst(g, weights, root, cfg)` | `session.mst(weights)` |
/// | `distributed_components(g, root, cfg)` | `session.components()` |
/// | `approx_mincut_distributed(g, root, cfg)` | `session.mincut()` |
/// | `full_shortcut(g, tree, parts, cfg)` | `session.shortcut()` / `session.full_artifact()` |
/// | `distributed_full_shortcut(g, root, parts, cfg, dist)` | `Backend::Distributed` / `Backend::Sketch` + `session.shortcut()` |
/// | `partial_shortcut_or_witness(g, tree, parts, δ̂, cfg)` | `session.partial(δ̂)` |
/// | `bfs::bfs_tree(g, root)` | `session.tree()` |
/// | `measure_quality(g, parts, tree, shortcut)` | `session.quality()` |
///
/// Simulator knobs ride [`SessionConfig::sim`](lcs_core::session::SessionConfig::sim),
/// so every backend and op picks them up from the one config surface:
/// `threads` selects the sharded executor,
/// [`message_packing`](lcs_congest::SimConfig::message_packing) enables
/// multi-value CONGEST messages (`k > 1` coalesces burst sends into packed
/// batches within the `O(log n)`-bit budget — the n = 10⁵ sketch
/// construction drops ~2.6× in simulated rounds at `k = 8` with
/// bit-identical results). Per-op overrides (`aggregate.sim`, `mst.sim`, …)
/// replace the session-wide `sim` wholesale when set.
///
/// # Mutating a live session
///
/// Sessions are no longer frozen after the first construction. Five
/// tracked inputs — `Topology`, `Tree`, `Partition`, `Weights`, `Sim`
/// ([`Input`](lcs_core::session::Input)) — each carry an epoch counter
/// ([`Epochs`](lcs_core::session::Epochs)); every cached artifact records
/// the epochs it was built under plus a declared dependency set
/// ([`deps`](lcs_core::session::deps)), and is invalidated precisely when
/// a declared input's epoch bumps:
///
/// * [`set_partition`](lcs_core::session::ShortcutSession::set_partition)
///   replaces the partition wholesale — shortcut, quality, partials, and
///   partition-scoped op artifacts rebuild on next access; the tree and
///   diameter bounds survive.
/// * [`reassign_parts`](lcs_core::session::ShortcutSession::reassign_parts)
///   moves nodes between existing parts and **re-customizes
///   incrementally**: a mini doubling search over only the touched parts
///   splices their `H_i` into the cached shortcut, quality rows are
///   re-measured for touched parts only, and ops refresh their cached
///   participation maps part-locally. Everything else survives
///   byte-for-byte — the CCH-style customization step.
/// * [`set_weights`](lcs_core::session::ShortcutSession::set_weights) /
///   [`update_weights`](lcs_core::session::ShortcutSession::update_weights)
///   mutate the weight input read by `session.mst(..)`; the shortcut and
///   partition artifacts are weight-independent and survive.
///
/// [`CacheStats`](lcs_core::session::CacheStats) (serde-able, via
/// [`cache_stats`](lcs_core::session::ShortcutSession::cache_stats))
/// counts builds/hits/invalidations per artifact class plus the
/// incremental-recustomization tallies; it replaces the deprecated
/// `constructions()` counter.
///
/// **Migration note:** code that held a `&PartialArtifact` (or
/// `&Shortcut` from `shortcut_ref()`) across a mutation must re-fetch it
/// afterwards: references returned by the accessors are tied to the epoch
/// they were read at, and `shortcut_ref()`/`tree_ref()` panic if called
/// on a stale cache — call `prepare()` (or any owning accessor) after a
/// mutation to refresh. The borrow checker already prevents holding a
/// shared borrow across the `&mut self` mutation calls; the panic guards
/// the remaining raw-handle patterns.
pub mod facade {
    pub use lcs_algos::session_ops::SessionAlgoOps;
    pub use lcs_algos::{
        connectivity::ComponentsOp,
        mincut::MincutOp,
        mst::{boruvka_config_of, MstOp},
    };
    pub use lcs_core::session::{
        deps, AggregateOpts, ArtifactStats, Backend, CacheStats, ConstructionStats, Epochs,
        FullArtifact, Input, MincutOpts, MstOpts, OpReport, PartialArtifact, PartwiseOp, Session,
        SessionBuilder, SessionConfig, SessionError, ShortcutSession, TreeSource, UnicastOpts,
    };
    pub use lcs_core::{HierarchySession, PartitionSource};
    pub use lcs_partwise::{AggregateOp, GossipOp, SessionPartwiseOps, UnicastOp};
    pub use lcs_separator::{nested_dissection, SeparatorConfig, SeparatorTree};
}

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::facade::{
        Backend, HierarchySession, OpReport, PartitionSource, Session, SessionAlgoOps,
        SessionConfig, SessionPartwiseOps, ShortcutSession, TreeSource,
    };
    pub use lcs_congest::protocols::AggOp;
    pub use lcs_core::{
        full_shortcut, measure_quality, partial_shortcut_or_witness, Partition, Shortcut,
        ShortcutConfig,
    };
    pub use lcs_graph::{bfs, diameter, gen, minor, EdgeId, Graph, NodeId, PartId, RootedTree};
}
