//! Lemma 3.2 (Figure 3.2): on the lower-bound topology, any shortcut for the
//! row parts has quality Ω(δ′D′). This example constructs the topology,
//! builds our (near-optimal) shortcut, and shows the measured quality lands
//! between the lemma's lower bound and Theorem 1.2's upper bound.
//!
//! Run with: `cargo run --release --example lower_bound_topology`

use low_congestion_shortcuts::prelude::*;

fn main() {
    println!(
        "{:>4} {:>5} {:>7} {:>7} {:>10} {:>12} {:>12}",
        "δ'", "D'", "n", "δ̂", "quality", "lower bound", "upper bound"
    );
    for (dp, dd) in [(5u32, 24u32), (5, 36), (6, 36), (7, 48)] {
        let lb = gen::lower_bound_topology(dp, dd);
        let parts = Partition::from_parts(&lb.graph, lb.rows.clone())
            .expect("rows are disjoint connected paths");
        let tree = bfs::bfs_tree(&lb.graph, lb.top_path[0]);
        let built = full_shortcut(&lb.graph, &tree, &parts, &ShortcutConfig::default());
        let q = measure_quality(&lb.graph, &parts, &tree, &built.shortcut);

        let d = tree.depth_of_tree();
        let n = lb.graph.num_nodes() as f64;
        // Theorem 1.2: congestion O(δD log n) + dilation O(δD).
        let upper = f64::from(8 * built.delta_hat * d) * n.log2()
            + f64::from((8 * built.delta_hat + 1) * (2 * d + 1));
        println!(
            "{:>4} {:>5} {:>7} {:>7} {:>10} {:>12.1} {:>12.0}",
            dp,
            dd,
            lb.graph.num_nodes(),
            built.delta_hat,
            q.quality(),
            lb.internal_lower_bound(),
            upper
        );
        assert!(
            f64::from(q.quality()) >= lb.internal_lower_bound(),
            "no shortcut can beat the Lemma 3.2 bound"
        );
    }
    println!("\nmeasured quality >= (δ-1)D/2 on every instance, as Lemma 3.2 demands;");
    println!("and within the O(δD log n) guarantee of Theorem 1.2.");
}
