//! Lemma 3.2 (Figure 3.2): on the lower-bound topology, any shortcut for the
//! row parts has quality Ω(δ′D′). This example builds one `ShortcutSession`
//! per instance and shows the measured quality lands between the lemma's
//! lower bound and Theorem 1.2's upper bound.
//!
//! Run with: `cargo run --release --example lower_bound_topology`

use low_congestion_shortcuts::prelude::*;

fn main() {
    println!(
        "{:>4} {:>5} {:>7} {:>7} {:>10} {:>12} {:>12}",
        "δ'", "D'", "n", "δ̂", "quality", "lower bound", "upper bound"
    );
    for (dp, dd) in [(5u32, 24u32), (5, 36), (6, 36), (7, 48)] {
        let lb = gen::lower_bound_topology(dp, dd);
        let mut session = Session::on(&lb.graph)
            .tree(TreeSource::Bfs(lb.top_path[0]))
            .partition(lb.rows.clone())
            .build()
            .expect("rows are disjoint connected paths");

        let delta_hat = session.delta_hat();
        let d = session.tree().depth_of_tree();
        let q = session.quality().clone();

        let n = lb.graph.num_nodes() as f64;
        // Theorem 1.2: congestion O(δD log n) + dilation O(δD).
        let upper =
            f64::from(8 * delta_hat * d) * n.log2() + f64::from((8 * delta_hat + 1) * (2 * d + 1));
        println!(
            "{:>4} {:>5} {:>7} {:>7} {:>10} {:>12.1} {:>12.0}",
            dp,
            dd,
            lb.graph.num_nodes(),
            delta_hat,
            q.quality(),
            lb.internal_lower_bound(),
            upper
        );
        assert!(
            f64::from(q.quality()) >= lb.internal_lower_bound(),
            "no shortcut can beat the Lemma 3.2 bound"
        );
    }
    println!("\nmeasured quality >= (δ-1)D/2 on every instance, as Lemma 3.2 demands;");
    println!("and within the O(δD log n) guarantee of Theorem 1.2.");
}
