//! The certifying side of Theorem 3.1: on an instance where the sweep fails
//! (Case II), extract a dense-minor witness that *proves* the graph has
//! minor density above the guess, and verify it.
//!
//! Run with: `cargo run --release --example certify_dense_minor`

use low_congestion_shortcuts::core::{partial_shortcut_or_witness, SweepOutcome};
use low_congestion_shortcuts::prelude::*;

fn main() {
    // The comb: depth-2 BFS tree, 28 chain parts crossing 12 subtrees —
    // every root edge overcongests at δ̂ = 1 and every part has B-degree 12.
    let comb = gen::comb(12, 28);
    let parts = Partition::from_parts(&comb.graph, comb.parts.clone())
        .expect("comb chains are disjoint connected parts");
    let tree = bfs::bfs_tree(&comb.graph, NodeId(0));

    for delta_hat in [1u32, 2] {
        match partial_shortcut_or_witness(
            &comb.graph,
            &tree,
            &parts,
            delta_hat,
            &ShortcutConfig::default(),
        ) {
            SweepOutcome::Shortcut(ps) => {
                println!(
                    "δ̂ = {delta_hat}: Case (I) — {} of {} parts served, {} overcongested edges",
                    ps.served.len(),
                    parts.num_parts(),
                    ps.data.over_edges.len()
                );
            }
            SweepOutcome::DenseMinor { witness, data } => {
                let w = witness.expect("derandomized extraction always succeeds here");
                minor::verify_minor(&comb.graph, &w).expect("witness must verify");
                println!(
                    "δ̂ = {delta_hat}: Case (II) — {} overcongested edges; certified minor \
                     with {} branch sets, {} edges, density {:.3} > {delta_hat}",
                    data.over_edges.len(),
                    w.num_nodes(),
                    w.num_edges(),
                    w.density()
                );
                assert!(w.density() > f64::from(delta_hat));
            }
        }
    }

    // The heuristic lower bound agrees that the comb is dense.
    let est = minor::greedy_contraction_density(&comb.graph, None);
    println!(
        "greedy contraction lower bound on δ(G): {:.3} (witness verifies: {})",
        est.density,
        minor::verify_minor(&comb.graph, &est.witness).is_ok()
    );
}
