//! The certifying side of Theorem 3.1: on an instance where the sweep fails
//! (Case II), extract a dense-minor witness that *proves* the graph has
//! minor density above the guess, and verify it. The per-`δ̂` sweeps are
//! served (and cached) by a `ShortcutSession`.
//!
//! Run with: `cargo run --release --example certify_dense_minor`

use low_congestion_shortcuts::prelude::*;

fn main() {
    // The comb: depth-2 BFS tree, 28 chain parts crossing 12 subtrees —
    // every root edge overcongests at δ̂ = 1 and every part has B-degree 12.
    let comb = gen::comb(12, 28);
    let mut session = Session::on(&comb.graph)
        .tree(TreeSource::Bfs(NodeId(0)))
        .partition(comb.parts.clone())
        .build()
        .expect("comb chains are disjoint connected parts");
    let k = session.partition().num_parts();

    for delta_hat in [1u32, 2] {
        let sweep = session.partial(delta_hat);
        if sweep.case_one {
            println!(
                "δ̂ = {delta_hat}: Case (I) — {} of {k} parts served, {} overcongested edges",
                sweep.served.len(),
                sweep.data.over_edges.len()
            );
        } else {
            let w = sweep
                .witness
                .as_ref()
                .expect("derandomized extraction always succeeds here");
            minor::verify_minor(&comb.graph, w).expect("witness must verify");
            println!(
                "δ̂ = {delta_hat}: Case (II) — {} overcongested edges; certified minor \
                 with {} branch sets, {} edges, density {:.3} > {delta_hat}",
                sweep.data.over_edges.len(),
                w.num_nodes(),
                w.num_edges(),
                w.density()
            );
            assert!(w.density() > f64::from(delta_hat));
        }
    }
    // Each δ̂ was swept exactly once; repeated queries would be cache hits.
    assert_eq!(session.cache_stats().partials.builds, 2);

    // The full construction's doubling search collects the densest
    // certificate as a by-product (the remark after Theorem 3.1).
    let full_witness = session
        .witness()
        .expect("the comb's failed δ̂ = 1 round yields a witness")
        .clone();
    println!(
        "full construction: δ̂ = {}, by-product certificate density {:.3}",
        session.delta_hat(),
        full_witness.density()
    );

    // The heuristic lower bound agrees that the comb is dense.
    let est = minor::greedy_contraction_density(&comb.graph, None);
    println!(
        "greedy contraction lower bound on δ(G): {:.3} (witness verifies: {})",
        est.density,
        minor::verify_minor(&comb.graph, &est.witness).is_ok()
    );
}
