//! Distributed MST on a planar network (Corollary 1.6): shortcut-based
//! Boruvka driven by a `ShortcutSession` versus the `D+√n` baseline and the
//! no-shortcut strawman, checked against Kruskal.
//!
//! Run with: `cargo run --release --example mst_planar`

use lcs_graph::weights::EdgeWeights;
use low_congestion_shortcuts::algos::mst::{
    distributed_mst, kruskal, BoruvkaConfig, ShortcutProvider,
};
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let side = 24;
    let g = gen::grid(side, side);
    let mut rng = SmallRng::seed_from_u64(2024);
    let weights = EdgeWeights::random_unique(&g, &mut rng);

    let reference = kruskal(&g, &weights);
    let ref_weight = weights.total(reference.iter().copied());
    println!(
        "grid {side}x{side}: n = {}, m = {}, MST weight (Kruskal) = {ref_weight}",
        g.num_nodes(),
        g.num_edges()
    );
    println!(
        "{:<22} {:>8} {:>10} {:>8}",
        "provider", "phases", "rounds", "exact?"
    );

    // The real pipeline: a session whose backend supplies the Boruvka
    // phases with minor-sweep shortcuts (centralized oracle here; switch
    // the backend to Distributed/Sketch for the simulated construction).
    let mut session = Session::on(&g)
        .tree(TreeSource::Bfs(NodeId(0)))
        .backend(Backend::Centralized)
        .build()
        .expect("builder cannot fail without a partition");
    let report = session.mst(&weights);
    assert_eq!(report.result.edges, reference, "session MST must be exact");
    println!(
        "{:<22} {:>8} {:>10} {:>8}",
        "minor-sweep (session)", report.result.phases, report.rounds, "yes"
    );

    // The strawmen keep the legacy free-function surface.
    for (name, provider) in [
        ("baseline D+sqrt(n)", ShortcutProvider::Baseline),
        ("no shortcuts", ShortcutProvider::None),
    ] {
        let cfg = BoruvkaConfig {
            provider,
            ..BoruvkaConfig::default()
        };
        let report = distributed_mst(&g, &weights, NodeId(0), &cfg);
        assert_eq!(report.edges, reference, "{name} must produce the exact MST");
        println!(
            "{:<22} {:>8} {:>10} {:>8}",
            name,
            report.phases,
            report.rounds.total(),
            "yes"
        );
    }
}
