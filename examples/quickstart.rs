//! Quickstart: prepare a `ShortcutSession` on a planar grid, check the
//! construction against the paper's bounds, then serve aggregation queries
//! from the cached shortcut.
//!
//! Run with: `cargo run --release --example quickstart`

use low_congestion_shortcuts::prelude::*;

fn main() {
    // A 32x32 planar grid (minor density δ < 3, diameter 62) whose rows are
    // the parts of a part-wise aggregation instance.
    let side = 32;
    let g = gen::grid(side, side);
    let mut session = Session::on(&g)
        .tree(TreeSource::Bfs(NodeId(0)))
        .partition(gen::rows_of_grid(side, side))
        .backend(Backend::Centralized)
        .build()
        .expect("grid rows are disjoint connected paths");

    let d = session.tree().depth_of_tree();
    println!(
        "graph: n = {}, m = {}, tree depth D = {d}",
        g.num_nodes(),
        g.num_edges()
    );

    // Theorem 1.2 machinery runs once, on first access, and is cached.
    let delta_hat = session.delta_hat();
    let q = session.quality().clone();
    println!(
        "construction: δ̂ = {delta_hat} (full builds: {})",
        session.cache_stats().full.builds
    );
    println!(
        "measured:  congestion = {:>4}   dilation <= {:>4}   blocks = {}",
        q.max_congestion, q.max_dilation_upper, q.max_blocks
    );
    println!(
        "bounds:    congestion <= {:>3}·rounds   dilation <= {:>4}   blocks <= {}",
        8 * delta_hat * d,
        (8 * delta_hat + 1) * (2 * d + 1),
        8 * delta_hat + 1
    );
    assert!(q.tree_restricted && q.all_connected());
    assert!(q.max_blocks <= 8 * delta_hat + 1);

    // The quality governs part-wise aggregation: Q = c + d.
    println!("shortcut quality Q = c + d = {}", q.quality());

    // Serve queries: every call reuses the cached shortcut.
    let values: Vec<u64> = (0..g.num_nodes() as u64).collect();
    for op in [AggOp::Min, AggOp::Max, AggOp::Sum] {
        let report = session.aggregate(&values, op);
        println!(
            "serve {op:?}: rounds = {:>4}, messages = {:>6}, bits = {:>7}, part 0 -> {:?}",
            report.rounds, report.messages, report.bits, report.result.results[0]
        );
        assert!(report.result.all_members_informed);
    }
    assert_eq!(
        session.cache_stats().full.builds,
        1,
        "three queries, one construction — the serving scenario"
    );
}
