//! Quickstart: construct a tree-restricted shortcut on a planar grid and
//! check it against the paper's bounds.
//!
//! Run with: `cargo run --release --example quickstart`

use low_congestion_shortcuts::prelude::*;

fn main() {
    // A 32x32 planar grid (minor density δ < 3, diameter 62) whose rows are
    // the parts of a part-wise aggregation instance.
    let side = 32;
    let g = gen::grid(side, side);
    let parts = Partition::from_parts(&g, gen::rows_of_grid(side, side))
        .expect("grid rows are disjoint connected paths");
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let d = tree.depth_of_tree();

    println!(
        "graph: n = {}, m = {}, tree depth D = {d}",
        g.num_nodes(),
        g.num_edges()
    );

    // Theorem 1.2 machinery: doubling search + Observation 2.7 loop.
    let built = full_shortcut(&g, &tree, &parts, &ShortcutConfig::default());
    let q = measure_quality(&g, &parts, &tree, &built.shortcut);

    println!(
        "construction: δ̂ = {}, rounds = {}",
        built.delta_hat, built.successful_rounds
    );
    println!(
        "measured:  congestion = {:>4}   dilation <= {:>4}   blocks = {}",
        q.max_congestion, q.max_dilation_upper, q.max_blocks
    );
    println!(
        "bounds:    congestion <= {:>3}   dilation <= {:>4}   blocks <= {}",
        8 * built.delta_hat * d * built.successful_rounds as u32,
        (8 * built.delta_hat + 1) * (2 * d + 1),
        8 * built.delta_hat + 1
    );
    assert!(q.tree_restricted && q.all_connected());
    assert!(q.max_blocks <= 8 * built.delta_hat + 1);

    // The quality governs part-wise aggregation: Q = c + d.
    println!("shortcut quality Q = c + d = {}", q.quality());
}
