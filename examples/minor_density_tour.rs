//! A tour of the minor-density machinery (§1.1 of the paper): certified
//! lower bounds from greedy contraction, degeneracy, exact values for tiny
//! graphs, and the Lemma 1.1 conversions to clique-minor order.
//!
//! Run with: `cargo run --release --example minor_density_tour`

use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(11);
    let families: Vec<(&str, Graph, Option<f64>)> = vec![
        // (name, graph, analytic δ bound if known)
        ("path 200", gen::path(200), Some(1.0)),
        ("grid 15x15 (planar)", gen::grid(15, 15), Some(3.0)),
        ("torus 12x12 (genus 1)", gen::torus(12, 12), Some(3.0)),
        ("4-tree (tw 4)", gen::ktree(300, 4, &mut rng), Some(4.0)),
        ("path-power-6 (tw 6)", gen::path_power(300, 6), Some(6.0)),
        ("K_12", gen::complete(12), Some(5.5)),
        ("grid-of-K6", gen::grid_of_cliques(4, 4, 6), None),
        (
            "ring+2 matchings",
            gen::ring_with_matchings(128, 2, &mut rng),
            None,
        ),
    ];

    println!(
        "{:<22} {:>6} {:>6} {:>7} {:>8} {:>9} {:>10} {:>9}",
        "family", "n", "m/n", "degen/2", "greedy", "δ bound", "K_r proven", "K_r max"
    );
    for (name, g, analytic) in families {
        let est = minor::greedy_contraction_density(&g, None);
        minor::verify_minor(&g, &est.witness).expect("witness must verify");
        let degen_half = minor::degeneracy(&g) as f64 / 2.0;
        // The certified minor implies K_r minors per Lemma 1.1; an analytic
        // δ upper bound caps the possible clique order.
        let proven = minor::guaranteed_clique_minor_order(est.density);
        let cap = analytic
            .map(|d| minor::max_clique_minor_order(d).to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22} {:>6} {:>6.2} {:>7.1} {:>8.3} {:>9} {:>10} {:>9}",
            name,
            g.num_nodes(),
            g.density(),
            degen_half,
            est.density,
            analytic.map(|d| format!("<= {d}")).unwrap_or("-".into()),
            proven,
            cap,
        );
        if let Some(d) = analytic {
            assert!(
                est.density <= d + 1e-9,
                "certified lower bound exceeded the analytic δ"
            );
        }
    }

    // Exact values on tiny graphs validate the heuristics.
    println!("\nexact δ on tiny graphs (brute force over branch sets):");
    for (name, g) in [
        ("K_5", gen::complete(5)),
        ("C_7", gen::cycle(7)),
        ("W_8 (wheel)", gen::wheel(8)),
        ("2x4 grid", gen::grid(2, 4)),
    ] {
        let exact = minor::exact_minor_density_small(&g);
        let greedy = minor::greedy_contraction_density(&g, None).density;
        println!("  {name:<12} exact = {exact:.3}   greedy = {greedy:.3}");
        assert!(greedy <= exact + 1e-9);
    }

    // Low minor density is what the shortcut framework exploits: a
    // `ShortcutSession` on a sparse family serves the corollary algorithms
    // (components, min-cut) from one prepared topology.
    println!("\nserving the corollaries on sparse families via ShortcutSession:");
    for (name, g) in [
        ("grid 6x6", gen::grid(6, 6)),
        ("torus 5x5", gen::torus(5, 5)),
    ] {
        let mut session = Session::on(&g).build().expect("no partition needed");
        let comps = session.components();
        let cut = session.mincut();
        let exact = low_congestion_shortcuts::algos::mincut::stoer_wagner(&g);
        assert_eq!(
            cut.result.estimate, exact,
            "{name}: small cuts found exactly"
        );
        println!(
            "  {name:<10} components = {}, mincut = {} (exact {exact}), \
             {} simulated rounds total",
            comps.result.count,
            cut.result.estimate,
            comps.rounds + cut.rounds
        );
    }
}
