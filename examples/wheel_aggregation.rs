//! The paper's Section 2 motivating example: a wheel graph has diameter 2,
//! but its rim — a single part — has induced diameter Θ(n). Part-wise
//! aggregation inside the part alone needs Θ(n) rounds; with a shortcut
//! through the hub it needs O(1)·D.
//!
//! Both sides run through `ShortcutSession`s over the same topology: one
//! builds the real shortcut, the other is seeded with the empty shortcut
//! (the strawman) via the builder's `.shortcut(..)` hook.
//!
//! Run with: `cargo run --release --example wheel_aggregation`

use low_congestion_shortcuts::core::baseline;
use low_congestion_shortcuts::prelude::*;

fn main() {
    println!(
        "{:>6} {:>16} {:>18} {:>8}",
        "n", "rounds (none)", "rounds (shortcut)", "speedup"
    );
    for exp in 5..=10 {
        let n = 1 << exp;
        let g = gen::wheel(n);
        let rim: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
        let partition = Partition::from_parts(&g, vec![rim]).expect("rim is connected");
        let values: Vec<u64> = (0..n as u64).collect();

        let mut with = Session::on(&g)
            .partition_object(partition.clone())
            .build()
            .expect("partition is valid");
        let mut without = Session::on(&g)
            .partition_object(partition.clone())
            .shortcut(baseline::no_shortcut(&partition))
            .build()
            .expect("partition is valid");

        let fast = with.aggregate(&values, AggOp::Max);
        let slow = without.aggregate(&values, AggOp::Max);
        assert_eq!(fast.result.results[0], Some(n as u64 - 1));
        assert_eq!(slow.result.results[0], Some(n as u64 - 1));
        println!(
            "{:>6} {:>16} {:>18} {:>7.1}x",
            n,
            slow.rounds,
            fast.rounds,
            slow.rounds as f64 / fast.rounds as f64
        );
    }
}
