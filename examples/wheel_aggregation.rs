//! The paper's Section 2 motivating example: a wheel graph has diameter 2,
//! but its rim — a single part — has induced diameter Θ(n). Part-wise
//! aggregation inside the part alone needs Θ(n) rounds; with a shortcut
//! through the hub it needs O(1)·D.
//!
//! Run with: `cargo run --release --example wheel_aggregation`

use low_congestion_shortcuts::congest::protocols::AggOp;
use low_congestion_shortcuts::core::baseline;
use low_congestion_shortcuts::partwise::{solve_partwise, PartwiseConfig};
use low_congestion_shortcuts::prelude::*;

fn main() {
    println!(
        "{:>6} {:>16} {:>18} {:>8}",
        "n", "rounds (none)", "rounds (shortcut)", "speedup"
    );
    for exp in 5..=10 {
        let n = 1 << exp;
        let g = gen::wheel(n);
        let rim: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
        let parts = Partition::from_parts(&g, vec![rim]).expect("rim is connected");
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &parts, &ShortcutConfig::default());
        let values: Vec<u64> = (0..n as u64).collect();

        let with = solve_partwise(
            &g,
            &parts,
            &built.shortcut,
            &values,
            AggOp::Max,
            None,
            &PartwiseConfig::default(),
        );
        let without = solve_partwise(
            &g,
            &parts,
            &baseline::no_shortcut(&parts),
            &values,
            AggOp::Max,
            None,
            &PartwiseConfig::default(),
        );
        assert_eq!(with.results[0], Some(n as u64 - 1));
        assert_eq!(without.results[0], Some(n as u64 - 1));
        println!(
            "{:>6} {:>16} {:>18} {:>7.1}x",
            n,
            without.metrics.rounds,
            with.metrics.rounds,
            without.metrics.rounds as f64 / with.metrics.rounds as f64
        );
    }
}
