//! Theorem 1.5 end to end: construct shortcuts *distributedly* on the
//! CONGEST simulator and compare the two detection modes — the trivial
//! deterministic exact streaming versus the randomized sketch — against the
//! centralized construction.
//!
//! Run with: `cargo run --release --example distributed_construction`

use low_congestion_shortcuts::core::dist::{distributed_full_shortcut, DistConfig, DistMode};
use low_congestion_shortcuts::core::WitnessMode;
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let side = 20;
    let g = gen::grid(side, side);
    let mut rng = SmallRng::seed_from_u64(99);
    let parts = gen::random_connected_parts(&g, side * side / 4, &mut rng);
    let partition = Partition::from_parts(&g, parts).expect("Voronoi parts are valid");
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };

    println!(
        "grid {side}x{side}: n = {}, m = {}, D = {}, k = {} parts\n",
        g.num_nodes(),
        g.num_edges(),
        tree.depth_of_tree(),
        partition.num_parts()
    );
    println!(
        "{:<14} {:>8} {:>10} {:>8} {:>10} {:>8}",
        "mode", "rounds", "messages", "δ̂", "congestion", "blocks"
    );

    for (name, mode) in [
        ("exact", DistMode::Exact),
        (
            "sketch t=16",
            DistMode::Sketch {
                t: 16,
                hash_seed: 0xfeed,
                cut_factor: 1.0,
            },
        ),
    ] {
        let dist = DistConfig {
            mode,
            ..DistConfig::default()
        };
        let res = distributed_full_shortcut(&g, NodeId(0), &partition, &cfg, &dist);
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        assert!(q.tree_restricted && q.all_connected());
        println!(
            "{:<14} {:>8} {:>10} {:>8} {:>10} {:>8}",
            name, res.rounds, res.messages, res.delta_hat, q.max_congestion, q.max_blocks
        );
    }

    // Centralized reference for comparison (zero simulated rounds).
    let central = full_shortcut(&g, &tree, &partition, &cfg);
    let q = measure_quality(&g, &partition, &tree, &central.shortcut);
    println!(
        "{:<14} {:>8} {:>10} {:>8} {:>10} {:>8}",
        "centralized", "-", "-", central.delta_hat, q.max_congestion, q.max_blocks
    );
    println!("\nall three constructions satisfy the Theorem 3.1 bounds;");
    println!("the exact mode's cut set equals the centralized one edge-for-edge.");
}
