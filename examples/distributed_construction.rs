//! Theorem 1.5 end to end: one `ShortcutSession` per backend — the
//! centralized Theorem 1.2 construction, the distributed exact-streaming
//! protocol, and the randomized KMV-sketch detection — all serving the same
//! partition from one call site.
//!
//! Run with: `cargo run --release --example distributed_construction`

use low_congestion_shortcuts::congest::SimConfig;
use low_congestion_shortcuts::core::dist::{DistConfig, DistMode};
use low_congestion_shortcuts::core::WitnessMode;
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let side = 20;
    let g = gen::grid(side, side);
    let mut rng = SmallRng::seed_from_u64(99);
    let parts = gen::random_connected_parts(&g, side * side / 4, &mut rng);
    let partition = Partition::from_parts(&g, parts).expect("Voronoi parts are valid");
    let config = SessionConfig {
        shortcut: ShortcutConfig {
            witness_mode: WitnessMode::Skip,
            ..ShortcutConfig::default()
        },
        ..SessionConfig::default()
    };

    let backends = [
        ("centralized", Backend::Centralized),
        ("exact", Backend::Distributed(SimConfig::default())),
        (
            "sketch t=16",
            Backend::Sketch(DistConfig {
                mode: DistMode::Sketch {
                    t: 16,
                    hash_seed: 0xfeed,
                    cut_factor: 1.0,
                },
                sim: SimConfig::default(),
            }),
        ),
    ];

    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>5} {:>10} {:>8}",
        "backend", "rounds", "messages", "bits", "δ̂", "congestion", "blocks"
    );
    for (name, backend) in backends {
        let mut session = Session::on(&g)
            .tree(TreeSource::Bfs(NodeId(0)))
            .partition_object(partition.clone())
            .backend(backend)
            .config(config.clone())
            .build()
            .expect("partition already validated");
        let delta_hat = session.delta_hat();
        let stats = session.construction_stats();
        let q = session.quality().clone();
        assert!(q.tree_restricted && q.all_connected());
        println!(
            "{:<14} {:>8} {:>10} {:>10} {:>5} {:>10} {:>8}",
            name,
            stats.rounds,
            stats.messages,
            stats.bits,
            delta_hat,
            q.max_congestion,
            q.max_blocks
        );
        assert_eq!(session.cache_stats().full.builds, 1);
    }

    println!("\nall three backends satisfy the Theorem 3.1 bounds;");
    println!(
        "the exact backend's construction equals the centralized one (zero simulated cost there);"
    );
    println!("the sketch backend trades exactness for O(t) messages per edge.");
}
