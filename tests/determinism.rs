//! Determinism guarantees: identical seeds give identical executions, which
//! is what makes every number in EXPERIMENTS.md exactly reproducible.

use lcs_graph::weights::EdgeWeights;
use low_congestion_shortcuts::algos::mst::{distributed_mst, BoruvkaConfig};
use low_congestion_shortcuts::congest::protocols::AggOp;
use low_congestion_shortcuts::core::dist::{distributed_partial_shortcut, DistConfig, DistMode};
use low_congestion_shortcuts::core::WitnessMode;
use low_congestion_shortcuts::partwise::{solve_partwise, PartwiseConfig};
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn partwise_runs_are_replayable() {
    let g = gen::grid(8, 8);
    let partition = Partition::from_parts(&g, gen::rows_of_grid(8, 8)).unwrap();
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
    let values: Vec<u64> = (0..64).collect();
    let cfg = PartwiseConfig {
        delay_range: 16,
        ..PartwiseConfig::default()
    };
    let a = solve_partwise(
        &g,
        &partition,
        &built.shortcut,
        &values,
        AggOp::Sum,
        None,
        &cfg,
    );
    let b = solve_partwise(
        &g,
        &partition,
        &built.shortcut,
        &values,
        AggOp::Sum,
        None,
        &cfg,
    );
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.results, b.results);
}

#[test]
fn mst_runs_are_replayable() {
    let g = gen::torus(6, 6);
    let mut rng = SmallRng::seed_from_u64(9);
    let w = EdgeWeights::random_unique(&g, &mut rng);
    let cfg = BoruvkaConfig::default();
    let a = distributed_mst(&g, &w, NodeId(0), &cfg);
    let b = distributed_mst(&g, &w, NodeId(0), &cfg);
    assert_eq!(a.edges, b.edges);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.phases, b.phases);
}

#[test]
fn distributed_construction_is_replayable_per_seed() {
    let g = gen::grid(10, 10);
    let mut rng = SmallRng::seed_from_u64(5);
    let parts = gen::random_connected_parts(&g, 25, &mut rng);
    let partition = Partition::from_parts(&g, parts).unwrap();
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let dist = DistConfig {
        mode: DistMode::Sketch {
            t: 16,
            hash_seed: 0x1234,
            cut_factor: 1.0,
        },
        ..DistConfig::default()
    };
    let a = distributed_partial_shortcut(&g, NodeId(0), &partition, 1, &cfg, &dist);
    let b = distributed_partial_shortcut(&g, NodeId(0), &partition, 1, &cfg, &dist);
    assert_eq!(a.over_edges, b.over_edges);
    assert_eq!(a.metrics_shortcut, b.metrics_shortcut);
    assert_eq!(a.shortcut, b.shortcut);

    // A different hash seed may legitimately differ, but stays valid.
    let dist2 = DistConfig {
        mode: DistMode::Sketch {
            t: 16,
            hash_seed: 0x9999,
            cut_factor: 1.0,
        },
        ..DistConfig::default()
    };
    let c = distributed_partial_shortcut(&g, NodeId(0), &partition, 1, &cfg, &dist2);
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let q = measure_quality(&g, &partition, &tree, &c.shortcut);
    assert!(q.tree_restricted);
}

#[test]
fn full_shortcut_is_deterministic_for_derandomized_mode() {
    let comb = gen::comb(10, 24);
    let partition = Partition::from_parts(&comb.graph, comb.parts.clone()).unwrap();
    let tree = bfs::bfs_tree(&comb.graph, NodeId(0));
    let cfg = ShortcutConfig::default(); // derandomized witnesses
    let a = full_shortcut(&comb.graph, &tree, &partition, &cfg);
    let b = full_shortcut(&comb.graph, &tree, &partition, &cfg);
    assert_eq!(a.shortcut, b.shortcut);
    assert_eq!(a.delta_hat, b.delta_hat);
    assert_eq!(a.best_witness, b.best_witness);
}
