//! One executable assertion per paper claim — the statements of the paper,
//! numbered as in the text, checked on concrete instances.

use low_congestion_shortcuts::congest::protocols::AggOp;
use low_congestion_shortcuts::core::{partial_shortcut_or_witness, SweepOutcome};
use low_congestion_shortcuts::partwise::{solve_partwise, PartwiseConfig};
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// §1.1, Lemma 1.1 [Tho01]: (r-1)/2 <= δ(G) <= 8r√(log₂ r) — checked via
/// the conversions on certified densities of graphs with known cliques.
#[test]
fn lemma_1_1_clique_minor_vs_density() {
    for r in [4usize, 6, 8] {
        let g = gen::complete(r);
        let est = minor::greedy_contraction_density(&g, None);
        // K_r's density is exactly (r-1)/2; the conversions must bracket r.
        assert!((est.density - (r as f64 - 1.0) / 2.0).abs() < 1e-9);
        assert!(minor::max_clique_minor_order(est.density) as usize >= r);
        assert!(minor::guaranteed_clique_minor_order(est.density) as usize <= r);
    }
}

/// Definition 2.2: congestion and dilation of a concrete shortcut measured
/// per the definition (checked against hand-computed values on the wheel).
#[test]
fn definition_2_2_quality_semantics() {
    let g = gen::wheel(10);
    let rim: Vec<NodeId> = (1..10).map(NodeId).collect();
    let partition = Partition::from_parts(&g, vec![rim]).unwrap();
    let tree = bfs::bfs_tree(&g, NodeId(0));
    // Two opposite spokes: dilation <= 4, congestion 1.
    let e1 = g.find_edge(NodeId(0), NodeId(1)).unwrap();
    let e5 = g.find_edge(NodeId(0), NodeId(5)).unwrap();
    let s = low_congestion_shortcuts::core::Shortcut::from_edge_lists(vec![vec![e1, e5]]);
    let q = measure_quality(&g, &partition, &tree, &s);
    assert_eq!(q.max_congestion, 1);
    assert!(q.max_dilation_upper <= 4);
}

/// Observation 2.6: a b-block T-restricted shortcut has dilation at most
/// b(2D + 1) — verified on every part of a constructed shortcut.
#[test]
fn observation_2_6_dilation_from_blocks() {
    let g = gen::grid(12, 12);
    let mut rng = SmallRng::seed_from_u64(26);
    let parts = gen::random_connected_parts(&g, 36, &mut rng);
    let partition = Partition::from_parts(&g, parts).unwrap();
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let d = tree.depth_of_tree();
    let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
    let q = measure_quality(&g, &partition, &tree, &built.shortcut);
    for pq in &q.per_part {
        assert!(u64::from(pq.dilation_upper) <= u64::from(pq.blocks) * u64::from(2 * d + 1));
    }
}

/// Observation 2.7: iterating partial shortcuts over the unserved parts
/// serves everyone within log₂ k successful rounds (at the final δ̂).
#[test]
fn observation_2_7_iteration_count() {
    let g = gen::grid(14, 14);
    let mut rng = SmallRng::seed_from_u64(27);
    let parts = gen::random_connected_parts(&g, 49, &mut rng);
    let partition = Partition::from_parts(&g, parts).unwrap();
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
    let k = partition.num_parts() as f64;
    assert!(built.successful_rounds as f64 <= k.log2().ceil() + 1.0);
    let served: usize = built.round_log.iter().map(|r| r.served).sum();
    assert_eq!(served, partition.num_parts());
}

/// Theorem 3.1 dichotomy: every sweep outcome is either a partial shortcut
/// serving at least half the parts, or a verified minor denser than δ̂.
#[test]
fn theorem_3_1_dichotomy() {
    let cases: Vec<(Graph, Vec<Vec<NodeId>>)> = vec![
        {
            let c = gen::comb(10, 24);
            (c.graph, c.parts)
        },
        {
            let g = gen::grid(10, 10);
            (g, gen::rows_of_grid(10, 10))
        },
        {
            let g = gen::torus(8, 8);
            let mut rng = SmallRng::seed_from_u64(31);
            let p = gen::random_connected_parts(&g, 16, &mut rng);
            (g, p)
        },
    ];
    for (g, parts) in cases {
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        for delta_hat in [1u32, 2] {
            match partial_shortcut_or_witness(
                &g,
                &tree,
                &partition,
                delta_hat,
                &ShortcutConfig::default(),
            ) {
                SweepOutcome::Shortcut(ps) => {
                    assert!(2 * ps.served.len() >= partition.num_parts());
                }
                SweepOutcome::DenseMinor { witness, .. } => {
                    let w = witness.expect("paper constants guarantee extraction");
                    minor::verify_minor(&g, &w).expect("witness must verify");
                    assert!(w.density() > f64::from(delta_hat));
                }
            }
        }
    }
}

/// Lemma 3.2: on the lower-bound topology, even OUR near-optimal shortcut
/// cannot beat (δ-1)D/2 — and the paper's planarity argument (density < δ′)
/// holds for the generated graph.
#[test]
fn lemma_3_2_lower_bound_holds() {
    for (dp, dd) in [(5u32, 24u32), (6, 36)] {
        let lb = gen::lower_bound_topology(dp, dd);
        assert!(lb.graph.density() < f64::from(dp));
        let partition = Partition::from_parts(&lb.graph, lb.rows.clone()).unwrap();
        let tree = bfs::bfs_tree(&lb.graph, lb.top_path[0]);
        let built = full_shortcut(&lb.graph, &tree, &partition, &ShortcutConfig::default());
        let q = measure_quality(&lb.graph, &partition, &tree, &built.shortcut);
        assert!(f64::from(q.quality()) >= lb.internal_lower_bound());
    }
}

/// Lemma 3.3: treewidth-k graphs have δ(G) <= k — certified densities of
/// k-trees and path powers never exceed k.
#[test]
fn lemma_3_3_treewidth_density() {
    let mut rng = SmallRng::seed_from_u64(33);
    for k in [2usize, 3, 4] {
        let g = gen::ktree(120, k, &mut rng);
        let est = minor::greedy_contraction_density(&g, None);
        assert!(
            est.density <= k as f64 + 1e-9,
            "k-tree density {} exceeds treewidth {k}",
            est.density
        );
        let g = gen::path_power(200, k);
        let est = minor::greedy_contraction_density(&g, None);
        assert!(est.density <= k as f64 + 1e-9);
    }
}

/// §2: part-wise aggregation in Õ(quality) rounds — the round count of the
/// solver never exceeds a small multiple of c + d·log₂ n.
#[test]
fn section_2_aggregation_within_quality_budget() {
    let g = gen::grid(12, 12);
    let partition = Partition::from_parts(&g, gen::rows_of_grid(12, 12)).unwrap();
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
    let q = measure_quality(&g, &partition, &tree, &built.shortcut);
    let values = vec![1u64; g.num_nodes()];
    let out = solve_partwise(
        &g,
        &partition,
        &built.shortcut,
        &values,
        AggOp::Sum,
        None,
        &PartwiseConfig::default(),
    );
    assert!(out.all_members_informed);
    let budget = f64::from(q.max_congestion)
        + f64::from(q.max_dilation_upper) * (g.num_nodes() as f64).log2();
    assert!(
        (out.metrics.rounds as f64) <= 3.0 * budget,
        "rounds {} exceed 3x budget {budget}",
        out.metrics.rounds
    );
}

/// Footnote 3 / §3.1: the explicit constant 8 in c = 8δD and the block
/// threshold 8δ are honored by the implementation's defaults.
#[test]
fn paper_constants_are_the_defaults() {
    let cfg = ShortcutConfig::default();
    assert_eq!(cfg.congestion_threshold(3, 10), 8 * 3 * 10);
    assert_eq!(cfg.block_threshold(3), 8 * 3);
}

use lcs_graph::Graph;
