//! The `lcs_server` daemon over a real loopback socket: happy-path ops,
//! the structured 4xx error contract, concurrent clients on one warm
//! session, and the mutation→query differential — results served over
//! HTTP after `reassign_parts` must be bit-identical to a session freshly
//! built on the mutated partition (the same oracle as the churn
//! differential in `tests/session.rs`).

use lcs_server::client::Client;
use lcs_server::{Server, ServerConfig, ServerHandle};
use low_congestion_shortcuts::congest::protocols::AggOp;
use low_congestion_shortcuts::facade::{Session, SessionPartwiseOps};
use low_congestion_shortcuts::graph::{gen, NodeId};
use serde::Value;
use std::time::Duration;

fn start() -> ServerHandle {
    Server::start(ServerConfig {
        workers: 4,
        max_body: 64 * 1024,
        io_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral loopback port")
}

fn grid_spec(rows: u64, cols: u64) -> Value {
    Value::object([(
        "graph",
        Value::object([
            ("family", Value::Str("grid".to_string())),
            ("rows", Value::U64(rows)),
            ("cols", Value::U64(cols)),
        ]),
    )])
}

fn create(client: &mut Client, spec: &Value) -> String {
    let r = client.post("/sessions", spec).expect("create session");
    assert_eq!(
        r.status,
        200,
        "create: {}",
        lcs_server::json::render(&r.body)
    );
    match r.field("id") {
        Some(Value::Str(id)) => id.clone(),
        other => panic!("create response has no id: {other:?}"),
    }
}

fn get_u64(v: &Value, name: &str) -> u64 {
    match lcs_server::json::lookup(v, name) {
        Some(Value::U64(x)) => *x,
        other => panic!("field `{name}` missing or mistyped: {other:?}"),
    }
}

fn result_values(r: &lcs_server::client::Response) -> Vec<Option<u64>> {
    let result = r.field("result").expect("op result");
    let Some(Value::Arr(items)) = lcs_server::json::lookup(result, "results") else {
        panic!("no results array in {}", lcs_server::json::render(&r.body));
    };
    items
        .iter()
        .map(|v| match v {
            Value::U64(x) => Some(*x),
            Value::Null => None,
            other => panic!("unexpected result entry {other:?}"),
        })
        .collect()
}

/// All six ops answer 200 over the socket with values matching the
/// in-process session facade.
#[test]
fn happy_path_ops_over_loopback() {
    let handle = start();
    let mut client = Client::new(handle.addr());
    let (rows, cols) = (5u64, 5u64);
    let id = create(&mut client, &grid_spec(rows, cols));
    let n = (rows * cols) as usize;
    let values: Vec<u64> = (0..n as u64).collect();

    // Aggregate: row parts of the grid, sum of 0..n per row.
    let body = Value::object([
        (
            "values",
            Value::Arr(values.iter().map(|&v| Value::U64(v)).collect()),
        ),
        ("op", Value::Str("sum".to_string())),
    ]);
    let agg = client
        .post(&format!("/sessions/{id}/aggregate"), &body)
        .expect("aggregate");
    assert_eq!(agg.status, 200);
    let served = result_values(&agg);
    let expected: Vec<Option<u64>> = (0..rows)
        .map(|r| Some((r * cols..(r + 1) * cols).sum()))
        .collect();
    assert_eq!(served, expected, "row sums of the 6×6 grid");
    assert!(
        get_u64(&agg.body, "rounds") > 0,
        "ops bill simulated rounds"
    );

    // Gossip min per row.
    let body = Value::object([
        (
            "values",
            Value::Arr(values.iter().map(|&v| Value::U64(v)).collect()),
        ),
        ("op", Value::Str("min".to_string())),
    ]);
    let gossip = client
        .post(&format!("/sessions/{id}/gossip"), &body)
        .expect("gossip");
    assert_eq!(gossip.status, 200);
    let served = result_values(&gossip);
    let expected: Vec<Option<u64>> = (0..rows).map(|r| Some(r * cols)).collect();
    assert_eq!(served, expected, "row minima of the 6×6 grid");

    // Unicast corner to corner.
    let body = Value::object([(
        "demands",
        Value::Arr(vec![Value::Arr(vec![
            Value::U64(0),
            Value::U64(n as u64 - 1),
        ])]),
    )]);
    let unicast = client
        .post(&format!("/sessions/{id}/unicast"), &body)
        .expect("unicast");
    assert_eq!(unicast.status, 200);
    let result = unicast.field("result").expect("unicast result");
    assert_eq!(get_u64(result, "delivered"), 1);

    // MST with unit weights: a spanning tree has n − 1 edges.
    let g = gen::grid(rows as usize, cols as usize);
    let body = Value::object([(
        "weights",
        Value::Arr((0..g.num_edges()).map(|_| Value::U64(1)).collect()),
    )]);
    let mst = client
        .post(&format!("/sessions/{id}/mst"), &body)
        .expect("mst");
    assert_eq!(mst.status, 200);
    let result = mst.field("result").expect("mst result");
    assert_eq!(get_u64(result, "total_weight"), n as u64 - 1);

    // Components: the grid is connected.
    let comps = client
        .post_raw(&format!("/sessions/{id}/components"), b"")
        .expect("components");
    assert_eq!(comps.status, 200);
    assert_eq!(get_u64(comps.field("result").expect("result"), "count"), 1);

    // Mincut: a grid corner has degree 2, so the 1-respecting estimate is
    // a small positive upper bound.
    let mincut = client
        .post_raw(&format!("/sessions/{id}/mincut"), b"")
        .expect("mincut");
    assert_eq!(mincut.status, 200);
    let estimate = get_u64(mincut.field("result").expect("result"), "estimate");
    assert!((1..=4).contains(&estimate), "estimate was {estimate}");

    // Quality of the served shortcut.
    let quality = client
        .post_raw(&format!("/sessions/{id}/quality"), b"")
        .expect("quality");
    assert_eq!(quality.status, 200);
    assert!(get_u64(&quality.body, "quality") > 0);
    assert_eq!(quality.field("all_connected"), Some(&Value::Bool(true)));

    handle.shutdown();
}

/// A declarative partition source in the session spec: the server
/// resolves `{"kind": "separator", ...}` on the graph, serves ops over the
/// dissection parts, and answers results matching the in-process facade
/// on the same resolved partition.
#[test]
fn separator_source_partitions_are_served_over_the_wire() {
    let handle = start();
    let mut client = Client::new(handle.addr());
    let mut spec = grid_spec(6, 6);
    if let Value::Obj(fields) = &mut spec {
        fields.push((
            "partition".to_string(),
            Value::object([
                ("kind", Value::Str("separator".to_string())),
                ("level", Value::U64(2)),
                ("min_region", Value::U64(4)),
            ]),
        ));
    }
    let id = create(&mut client, &spec);
    let values: Vec<u64> = (0..36).collect();
    let body = Value::object([
        (
            "values",
            Value::Arr(values.iter().map(|&v| Value::U64(v)).collect()),
        ),
        ("op", Value::Str("max".to_string())),
    ]);
    let agg = client
        .post(&format!("/sessions/{id}/aggregate"), &body)
        .expect("aggregate");
    assert_eq!(agg.status, 200);

    // Oracle: the same source resolved in process.
    let g = gen::grid(6, 6);
    let src = low_congestion_shortcuts::facade::PartitionSource::Separator {
        level: 2,
        min_region: 4,
    };
    let mut session = Session::on(&g).partition(src.resolve(&g)).build().unwrap();
    let expected: Vec<Option<u64>> = session.aggregate(&values, AggOp::Max).result.results;
    assert_eq!(result_values(&agg), expected);
    handle.shutdown();
}

/// The structured error contract: each failure class maps to its status
/// and stable machine-readable code, and the keep-alive worker survives
/// every one of them on a single connection.
#[test]
fn structured_errors_do_not_kill_the_worker() {
    let handle = start();
    let mut client = Client::new(handle.addr());
    let id = create(&mut client, &grid_spec(4, 4));

    let expect = |r: &lcs_server::client::Response, status: u16, code: &str| {
        assert_eq!(
            (r.status, r.field("error")),
            (status, Some(&Value::Str(code.to_string()))),
            "body: {}",
            lcs_server::json::render(&r.body)
        );
    };

    let r = client
        .post_raw("/sessions", b"{definitely not json")
        .unwrap();
    expect(&r, 400, "malformed_json");

    let r = client
        .post_raw("/sessions/s999/aggregate", b"{\"values\": []}")
        .unwrap();
    expect(&r, 404, "not_found");

    let r = client.post_raw("/nope", b"").unwrap();
    expect(&r, 404, "not_found");

    let r = client.request("DELETE", "/health", b"").unwrap();
    expect(&r, 405, "method_not_allowed");

    // Mutations that fail validation are 409s and leave the session alone.
    let r = client
        .post_raw(
            &format!("/sessions/{id}/reassign_parts"),
            b"{\"moves\": [[0, 400]]}",
        )
        .unwrap();
    expect(&r, 409, "invalid_mutation");

    // Weight updates out of range are 422s (satellite contract of the
    // typed `EdgeWeights::update` error).
    let r = client
        .post_raw(
            &format!("/sessions/{id}/update_weights"),
            b"{\"changes\": [[999, 1]]}",
        )
        .unwrap();
    expect(&r, 422, "bad_args");

    let r = client
        .post_raw(
            &format!("/sessions/{id}/aggregate"),
            b"{\"values\": [1, 2]}",
        )
        .unwrap();
    expect(&r, 422, "bad_args"); // one value per node required

    let r = client
        .post_raw(&format!("/sessions/{id}/aggregate"), b"{}")
        .unwrap();
    expect(&r, 422, "bad_args"); // missing required field

    let oversized = vec![b'x'; 80 * 1024];
    let r = client
        .post_raw(&format!("/sessions/{id}/aggregate"), &oversized)
        .unwrap();
    expect(&r, 413, "body_too_large");

    // Partition validation failures carry the PartitionError variant as
    // their machine-readable code: a disconnected part…
    let mut bad = grid_spec(4, 4);
    if let Value::Obj(fields) = &mut bad {
        fields.push((
            "partition".to_string(),
            Value::Arr(vec![Value::Arr(vec![Value::U64(0), Value::U64(15)])]),
        ));
    }
    let r = client.post("/sessions", &bad).unwrap();
    expect(&r, 422, "partition_disconnected");

    // …is distinct from a source that leaves nodes unassigned.
    let mut uncovered = grid_spec(4, 4);
    if let Value::Obj(fields) = &mut uncovered {
        fields.push((
            "partition".to_string(),
            Value::object([
                ("kind", Value::Str("rows".to_string())),
                ("rows", Value::U64(2)),
                ("cols", Value::U64(4)),
            ]),
        ));
    }
    let r = client.post("/sessions", &uncovered).unwrap();
    expect(&r, 422, "partition_uncovered");

    // The same connection (reconnected after the 413 close) still serves.
    let r = client.get("/health").unwrap();
    assert_eq!(r.status, 200);
    let metrics = client.get("/metrics").unwrap();
    let server_stats = lcs_server::json::lookup(&metrics.body, "server").expect("server stats");
    assert_eq!(get_u64(server_stats, "worker_panics"), 0);

    handle.shutdown();
}

/// Re-POSTing an identical spec returns the warm session; a different
/// spec builds a new one.
#[test]
fn identical_specs_hit_the_warm_session() {
    let handle = start();
    let mut client = Client::new(handle.addr());

    let first = client.post("/sessions", &grid_spec(5, 5)).unwrap();
    assert_eq!(first.field("created"), Some(&Value::Bool(true)));
    let second = client.post("/sessions", &grid_spec(5, 5)).unwrap();
    assert_eq!(second.field("created"), Some(&Value::Bool(false)));
    assert_eq!(first.field("id"), second.field("id"));

    let other = client.post("/sessions", &grid_spec(5, 6)).unwrap();
    assert_eq!(other.field("created"), Some(&Value::Bool(true)));
    assert_ne!(first.field("id"), other.field("id"));

    let metrics = client.get("/metrics").unwrap();
    let registry = lcs_server::json::lookup(&metrics.body, "registry").expect("registry");
    assert_eq!(get_u64(registry, "hits"), 1);
    assert_eq!(get_u64(registry, "misses"), 2);

    handle.shutdown();
}

/// Concurrent clients hammer one warm session; every request succeeds and
/// every served aggregate is the same correct value.
#[test]
fn concurrent_clients_share_one_session() {
    let handle = start();
    let addr = handle.addr();
    let mut client = Client::new(addr);
    let id = create(&mut client, &grid_spec(4, 4));
    let expected: Vec<Option<u64>> = (0..4u64)
        .map(|r| Some((r * 4..(r + 1) * 4).sum()))
        .collect();

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let id = id.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                for _ in 0..10 {
                    let body = Value::object([
                        ("values", Value::Arr((0..16u64).map(Value::U64).collect())),
                        ("op", Value::Str("sum".to_string())),
                    ]);
                    let r = client
                        .post(&format!("/sessions/{id}/aggregate"), &body)
                        .expect("concurrent aggregate");
                    assert_eq!(r.status, 200);
                    assert_eq!(result_values(&r), expected);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let metrics = client.get("/metrics").unwrap();
    let server_stats = lcs_server::json::lookup(&metrics.body, "server").expect("server stats");
    assert_eq!(get_u64(server_stats, "worker_panics"), 0);
    assert!(get_u64(server_stats, "requests") >= 41);

    handle.shutdown();
}

/// The mutation→query differential over the wire: after a served
/// `reassign_parts`, the served aggregate is bit-identical to a fresh
/// session built in-process on the same mutated partition.
#[test]
fn served_mutation_matches_fresh_build() {
    let handle = start();
    let mut client = Client::new(handle.addr());
    let (rows, cols) = (5usize, 5usize);
    let id = create(&mut client, &grid_spec(rows as u64, cols as u64));
    let values: Vec<u64> = (0..(rows * cols) as u64).collect();

    // Churn: move the first node of row r to row r − 1's part and back,
    // across several ticks (the bench_churn mover pattern).
    let mut parts = gen::rows_of_grid(rows, cols);
    for tick in 0..3 {
        let row = 1 + 2 * (tick % 2); // rows 1 and 3
        let target = if tick < 2 { row - 1 } else { row };
        let node = (row * cols) as u32;
        let body = Value::object([(
            "moves",
            Value::Arr(vec![Value::Arr(vec![
                Value::U64(u64::from(node)),
                Value::U64(target as u64),
            ])]),
        )]);
        let r = client
            .post(&format!("/sessions/{id}/reassign_parts"), &body)
            .expect("reassign_parts");
        assert_eq!(
            r.status,
            200,
            "tick {tick}: {}",
            lcs_server::json::render(&r.body)
        );

        // Mirror the move on the in-process oracle partition.
        for p in parts.iter_mut() {
            p.retain(|&v| v != NodeId(node));
        }
        parts[target].push(NodeId(node));

        let body = Value::object([
            (
                "values",
                Value::Arr(values.iter().map(|&v| Value::U64(v)).collect()),
            ),
            ("op", Value::Str("sum".to_string())),
        ]);
        let served = client
            .post(&format!("/sessions/{id}/aggregate"), &body)
            .expect("aggregate after mutation");
        assert_eq!(served.status, 200);

        let g = gen::grid(rows, cols);
        let mut fresh = Session::on(&g)
            .partition(parts.clone())
            .build()
            .expect("mutated rows stay valid parts");
        let oracle = fresh.aggregate(&values, AggOp::Sum);
        assert_eq!(
            result_values(&served),
            oracle.result.results,
            "tick {tick}: served results must be bit-identical to a fresh build"
        );
    }

    handle.shutdown();
}

/// `POST /shutdown` answers 200 and the worker pool drains.
#[test]
fn shutdown_endpoint_stops_the_server() {
    let handle = start();
    let mut client = Client::new(handle.addr());
    let r = client.post_raw("/shutdown", b"").expect("shutdown");
    assert_eq!(r.status, 200);
    // wait() returns once the workers notice the flag and exit.
    handle.wait();
}
