//! The `ShortcutSession` facade: cached-artifact reuse, backend
//! equivalence, mutation correctness, and the unified `SessionConfig`.
//!
//! The serving scenario the facade exists for: prepare one topology, then
//! answer many queries — and now mutate the inputs between queries. These
//! tests pin (a) that repeated operations reuse the cached shortcut
//! (counted builds in `CacheStats`), (b) that `session.aggregate` matches
//! `centralized_aggregate` on the 50-seed × 3-family differential corpus
//! on **all three backends**, (c) the **churn differential**: after every
//! mutation (`reassign_parts`, `set_partition`, `update_weights`) each
//! op's result is bit-identical to a fresh-built session on the mutated
//! inputs, and (d) that `SessionConfig` and the legacy config structs it
//! absorbs survive serde round trips, with a pinned JSON snapshot of the
//! defaults.

use lcs_graph::weights::EdgeWeights;
use low_congestion_shortcuts::algos::mst::kruskal;
use low_congestion_shortcuts::congest::{SimConfig, SimMode};
use low_congestion_shortcuts::core::dist::{DistConfig, DistMode};
use low_congestion_shortcuts::core::WitnessMode;
use low_congestion_shortcuts::facade::*;
use low_congestion_shortcuts::partwise::centralized_aggregate;
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Simulator packing factor for the differential corpus (CI also runs it
/// at `LCS_SIM_PACKING=8`; results must be identical).
fn env_packing() -> usize {
    std::env::var("LCS_SIM_PACKING")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn env_sim() -> SimConfig {
    SimConfig {
        message_packing: env_packing(),
        ..SimConfig::default()
    }
}

fn fast_config() -> SessionConfig {
    SessionConfig {
        shortcut: ShortcutConfig {
            witness_mode: WitnessMode::Skip,
            ..ShortcutConfig::default()
        },
        sim: env_sim(),
        ..SessionConfig::default()
    }
}

/// Acceptance criterion of the facade: the second aggregate call on the
/// same session must reuse the cached shortcut.
#[test]
fn second_aggregate_reuses_cached_shortcut() {
    let g = gen::grid(8, 8);
    let mut session = Session::on(&g)
        .tree(TreeSource::Bfs(NodeId(0)))
        .partition(gen::rows_of_grid(8, 8))
        .backend(Backend::Centralized)
        .build()
        .unwrap();
    assert_eq!(session.cache_stats().full.builds, 0, "build is lazy");

    let values: Vec<u64> = (0..64).collect();
    let first = session.aggregate(&values, AggOp::Max);
    assert_eq!(
        session.cache_stats().full.builds,
        1,
        "first call constructs"
    );
    let second = session.aggregate(&values, AggOp::Sum);
    let third = session.gossip(
        &values,
        low_congestion_shortcuts::partwise::IdempotentOp::Min,
    );
    assert_eq!(
        session.cache_stats().full.builds,
        1,
        "later ops must reuse the cached shortcut"
    );
    assert!(
        session.cache_stats().full.hits >= 2,
        "later ops count as cache hits"
    );
    assert!(first.result.all_members_informed);
    assert!(second.result.all_members_informed);
    assert!(third.result.converged);
    // The uniform report carries cost and execution configuration.
    assert!(first.rounds > 0 && first.messages > 0 && first.bits > 0);
    assert_eq!(first.threads, 1);
    assert!(first.bandwidth_bits > 0);
    let q = first
        .quality
        .expect("partition ops carry the quality report");
    assert!(q.tree_restricted);
}

fn backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("centralized", Backend::Centralized),
        ("distributed", Backend::Distributed(env_sim())),
        (
            "sketch",
            Backend::Sketch(DistConfig {
                mode: DistMode::Sketch {
                    t: 8,
                    hash_seed: 0xbeef,
                    cut_factor: 1.0,
                },
                sim: env_sim(),
            }),
        ),
    ]
}

fn assert_session_matches_centralized(g: &Graph, parts: Vec<Vec<NodeId>>, label: &str) {
    let partition = Partition::from_parts(g, parts).unwrap();
    let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| (x * 131) % 997).collect();
    let expect = centralized_aggregate(&partition, &values, AggOp::Sum);
    for (name, backend) in backends() {
        let mut session = Session::on(g)
            .partition_object(partition.clone())
            .backend(backend)
            .config(fast_config())
            .build()
            .unwrap();
        let out = session.aggregate(&values, AggOp::Sum);
        assert!(
            out.result.all_members_informed,
            "{label}/{name}: all members informed"
        );
        let got: Vec<u64> = out.result.results.iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, expect, "{label}/{name}: aggregate differs");
        assert_eq!(session.cache_stats().full.builds, 1, "{label}/{name}");
    }
}

const DIFFERENTIAL_SEEDS: u64 = 50;

#[test]
fn session_aggregate_matches_centralized_on_gnm_all_backends() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::gnm_connected(120, 240, &mut rng);
        let parts = gen::random_connected_parts(&g, 30, &mut rng);
        assert_session_matches_centralized(&g, parts, &format!("gnm seed {seed}"));
    }
}

#[test]
fn session_aggregate_matches_centralized_on_tori_all_backends() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let rows = 4 + (seed as usize % 5);
        let cols = 4 + ((seed as usize / 5) % 5);
        let g = gen::torus(rows, cols);
        let k = 1 + (seed as usize % (g.num_nodes() / 2));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        assert_session_matches_centralized(&g, parts, &format!("torus seed {seed}"));
    }
}

#[test]
fn session_aggregate_matches_centralized_on_ktrees_all_backends() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let n = 40 + (seed as usize % 80);
        let g = gen::ktree(n, 3, &mut rng);
        let k = 1 + (seed as usize % (n / 4));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        assert_session_matches_centralized(&g, parts, &format!("ktree seed {seed}"));
    }
}

/// Finds one boundary move the session accepts and applies it: candidates
/// are `(node, neighboring part)` pairs in ascending order;
/// `reassign_parts` rejects — and provably leaves the session untouched —
/// any move that would empty or disconnect a part. Returns `None` when no
/// single-node move is valid (e.g. `k = 1`).
fn reassign_one_boundary_node(session: &mut ShortcutSession<'_>) -> Option<Vec<PartId>> {
    let g = session.graph();
    let candidates: Vec<(NodeId, PartId)> = {
        let partition = session.partition();
        let mut c = Vec::new();
        for v in (0..g.num_nodes() as u32).map(NodeId) {
            let Some(from) = partition.part_of(v) else {
                continue;
            };
            for nb in g.neighbors(v) {
                match partition.part_of(nb.node) {
                    Some(to) if to != from => c.push((v, to)),
                    _ => {}
                }
            }
        }
        c.sort();
        c.dedup();
        c
    };
    candidates
        .into_iter()
        .find_map(|mv| session.reassign_parts(&[mv]).ok())
}

/// One churn check: every cheap partition op on the (mutated) live session
/// must produce result values bit-identical to a session freshly built on
/// the live session's current partition. Rounds/metrics are NOT compared —
/// the incrementally re-customized shortcut may legitimately differ from a
/// fresh joint construction, but both are valid shortcuts, so every op
/// converges to the same values.
fn assert_ops_match_fresh(
    session: &mut ShortcutSession<'_>,
    backend: &Backend,
    values: &[u64],
    label: &str,
) {
    let g = session.graph();
    let mut fresh = Session::on(g)
        .partition_object(session.partition().clone())
        .backend(backend.clone())
        .config(fast_config())
        .build()
        .unwrap();

    let live_agg = session.aggregate(values, AggOp::Sum);
    let fresh_agg = fresh.aggregate(values, AggOp::Sum);
    assert_eq!(
        live_agg.result.results, fresh_agg.result.results,
        "{label}: aggregate results diverge from a fresh build"
    );
    assert!(
        live_agg.result.all_members_informed && fresh_agg.result.all_members_informed,
        "{label}: aggregate must inform all members"
    );

    let gossip_op = low_congestion_shortcuts::partwise::IdempotentOp::Min;
    let live_gossip = session.gossip(values, gossip_op);
    let fresh_gossip = fresh.gossip(values, gossip_op);
    assert_eq!(
        live_gossip.result.results, fresh_gossip.result.results,
        "{label}: gossip results diverge from a fresh build"
    );
    assert!(
        live_gossip.result.converged && fresh_gossip.result.converged,
        "{label}: gossip must converge"
    );

    let q = session.quality().clone();
    assert!(
        q.all_connected(),
        "{label}: mutated session's shortcut must keep every part connected"
    );
}

/// The churn differential: after `reassign_parts` (incremental
/// re-customization) and after `set_partition` (wholesale replacement),
/// every op result on the live session is bit-identical to a fresh-built
/// session — per backend, per corpus family, across the 50-seed sweep.
/// CI repeats the sweep at `LCS_SIM_PACKING=8`.
fn churn_differential(g: &Graph, parts: Vec<Vec<NodeId>>, rng: &mut SmallRng, label: &str) {
    use rand::Rng;
    let partition = Partition::from_parts(g, parts).unwrap();
    let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| (x * 131) % 997).collect();
    let k2 = 1 + rng.gen_range(0..g.num_nodes() / 4);
    let wholesale = gen::random_connected_parts(g, k2, rng);
    for (name, backend) in backends() {
        let mut session = Session::on(g)
            .partition_object(partition.clone())
            .backend(backend.clone())
            .config(fast_config())
            .build()
            .unwrap();
        // Warm the cache, then mutate incrementally.
        let _ = session.aggregate(&values, AggOp::Sum);
        if reassign_one_boundary_node(&mut session).is_some() {
            assert_ops_match_fresh(
                &mut session,
                &backend,
                &values,
                &format!("{label}/{name}/reassign"),
            );
        }
        // Wholesale replacement on the same live session.
        session.set_partition(wholesale.clone()).unwrap();
        assert_ops_match_fresh(
            &mut session,
            &backend,
            &values,
            &format!("{label}/{name}/set_partition"),
        );
    }
}

const CHURN_SEEDS: u64 = 50;

#[test]
fn churn_differential_on_gnm_all_backends() {
    for seed in 0..CHURN_SEEDS {
        let mut rng = SmallRng::seed_from_u64(5000 + seed);
        let g = gen::gnm_connected(120, 240, &mut rng);
        let parts = gen::random_connected_parts(&g, 30, &mut rng);
        churn_differential(&g, parts, &mut rng, &format!("gnm churn seed {seed}"));
    }
}

#[test]
fn churn_differential_on_tori_all_backends() {
    for seed in 0..CHURN_SEEDS {
        let mut rng = SmallRng::seed_from_u64(6000 + seed);
        let rows = 4 + (seed as usize % 5);
        let cols = 4 + ((seed as usize / 5) % 5);
        let g = gen::torus(rows, cols);
        let k = 1 + (seed as usize % (g.num_nodes() / 2));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        churn_differential(&g, parts, &mut rng, &format!("torus churn seed {seed}"));
    }
}

#[test]
fn churn_differential_on_ktrees_all_backends() {
    for seed in 0..CHURN_SEEDS {
        let mut rng = SmallRng::seed_from_u64(7000 + seed);
        let n = 40 + (seed as usize % 80);
        let g = gen::ktree(n, 3, &mut rng);
        let k = 1 + (seed as usize % (n / 4));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        churn_differential(&g, parts, &mut rng, &format!("ktree churn seed {seed}"));
    }
}

/// The full op surface under churn, small instance: MST under
/// `update_weights`, components and mincut across partition churn, all
/// three backends. Weighted/topology-scoped artifacts must read the
/// current epoch-checked inputs, never a stale cache.
#[test]
fn all_ops_stay_differential_under_churn() {
    let g = gen::grid(6, 6);
    let mut rng = SmallRng::seed_from_u64(42);
    let weights = EdgeWeights::random_unique(&g, &mut rng);
    for (name, backend) in backends() {
        let mut session = Session::on(&g)
            .partition(gen::rows_of_grid(6, 6))
            .backend(backend.clone())
            .config(fast_config())
            .build()
            .unwrap();
        // Weighted op before and after a sparse weight update.
        let mst_before = session.mst(&weights);
        assert_eq!(mst_before.result.edges, kruskal(&g, &weights), "{name}");
        let mut bumped = weights.clone();
        bumped.update(&[(EdgeId(0), 1_000_000), (EdgeId(7), 2)]);
        session.update_weights(&[(EdgeId(0), 1_000_000), (EdgeId(7), 2)]);
        let mst_after = session.run(low_congestion_shortcuts::facade::MstOp);
        assert_eq!(
            mst_after.result.edges,
            kruskal(&g, &bumped),
            "{name}: MST must read the updated weights, not a stale artifact"
        );

        // Partition churn must not disturb topology-scoped results.
        let comps_before = session.components();
        let cut_before = session.mincut();
        let _ = reassign_one_boundary_node(&mut session).expect("grid rows have valid moves");
        assert_ops_match_fresh(
            &mut session,
            &backend,
            &(0..36u64).collect::<Vec<_>>(),
            &format!("all-ops/{name}"),
        );
        let comps_after = session.components();
        let cut_after = session.mincut();
        assert_eq!(
            comps_before.result.count, comps_after.result.count,
            "{name}"
        );
        assert_eq!(
            comps_before.result.label, comps_after.result.label,
            "{name}"
        );
        assert_eq!(
            cut_before.result.estimate, cut_after.result.estimate,
            "{name}: mincut is partition-independent"
        );
    }
}

/// The algorithm surface: MST ≡ Kruskal, components ≡ centralized count,
/// mincut ≥ exact, all driven through one session without a partition.
#[test]
fn algorithm_ops_run_through_the_session() {
    let g = gen::grid(6, 6);
    let mut rng = SmallRng::seed_from_u64(9);
    let weights = EdgeWeights::random_unique(&g, &mut rng);
    let mut session = Session::on(&g).build().unwrap();

    let mst = session.mst(&weights);
    assert_eq!(mst.result.edges, kruskal(&g, &weights));
    assert!(mst.rounds > 0 && mst.messages > 0 && mst.bits > 0);
    assert!(mst.quality.is_none(), "fragment ops carry no quality");

    let comps = session.components();
    assert_eq!(comps.result.count, 1);

    let cut = session.mincut();
    let exact = low_congestion_shortcuts::algos::mincut::stoer_wagner(&g);
    assert!(cut.result.estimate >= exact);
    assert_eq!(cut.result.estimate, exact, "grid cuts are found exactly");
    assert!(cut.messages > 0 && cut.bits > 0);
}

/// Unicast rides on the cached tree only — it must not trigger a shortcut
/// construction.
#[test]
fn unicast_uses_the_tree_without_constructing_shortcuts() {
    let g = gen::grid(8, 8);
    let mut session = Session::on(&g)
        .partition(gen::rows_of_grid(8, 8))
        .build()
        .unwrap();
    let demands: Vec<(NodeId, NodeId)> = (0..16).map(|i| (NodeId(i), NodeId(63 - i))).collect();
    let out = session.unicast(&demands);
    assert_eq!(out.result.delivered, 16);
    assert_eq!(
        session.cache_stats().full.builds,
        0,
        "routing must not build shortcuts"
    );
}

/// A provided shortcut (e.g. deserialized from a prior run) is served
/// as-is — the production serving path.
#[test]
fn deserialized_shortcut_serves_a_fresh_session() {
    let g = gen::grid(6, 6);
    let parts = gen::rows_of_grid(6, 6);
    let mut builder_session = Session::on(&g).partition(parts.clone()).build().unwrap();
    let json = serde_json::to_string(builder_session.shortcut()).unwrap();

    let restored: Shortcut = serde_json::from_str(&json).unwrap();
    let mut serving = Session::on(&g)
        .partition(parts)
        .shortcut(restored)
        .build()
        .unwrap();
    let values = vec![1u64; 36];
    let out = serving.aggregate(&values, AggOp::Sum);
    assert_eq!(out.result.results, vec![Some(6); 6]);
    assert_eq!(
        serving.cache_stats().full.builds,
        0,
        "served from the provided artifact"
    );
}

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn session_config_roundtrips_and_default_snapshot_is_pinned() {
    let mut cfg = SessionConfig::default();
    cfg.shortcut.witness_mode = WitnessMode::Sampled { attempts: 3 };
    cfg.sim.mode = SimMode::Queued;
    cfg.sim.threads = 4;
    cfg.aggregate.delay_range = 9;
    cfg.aggregate.sim = Some(SimConfig {
        threads: 2,
        ..SimConfig::default()
    });
    cfg.mst.max_phases = Some(12);
    cfg.mincut.trees = Some(5);
    assert_eq!(roundtrip(&cfg), cfg);

    // Pinned snapshot of the defaults: changing any default or renaming a
    // field is a config-compatibility break and must be deliberate.
    let snapshot = serde_json::to_string(&SessionConfig::default()).unwrap();
    assert_eq!(snapshot, SNAPSHOT, "SessionConfig default schema drifted");
}

/// The serialized `SessionConfig::default()` — the on-disk schema a
/// serving deployment would persist.
const SNAPSHOT: &str = "{\"shortcut\":{\"initial_delta_hat\":1,\"congestion_factor\":8,\
\"block_factor\":8,\"witness_mode\":\"Derandomized\",\"seed\":1554098974},\
\"sim\":{\"mode\":\"Strict\",\"bandwidth_bits\":null,\"max_rounds\":1000000,\
\"seed\":12648430,\"threads\":1,\"message_packing\":1},\
\"aggregate\":{\"delay_range\":0,\"seed\":909743,\"sim\":null},\
\"unicast\":{\"delay_range\":0,\"seed\":1047,\"sim\":null},\
\"mst\":{\"seed\":11577874,\"max_phases\":null,\"skip_small_fragments\":true,\"sim\":null},\
\"mincut\":{\"trees\":null,\"sim\":null},\"partition_source\":null,\"graph_source\":null}";

/// `CacheStats` is the serde-able observability surface a serving daemon
/// exports — the counters must survive a round trip untouched.
#[test]
fn cache_stats_roundtrip_through_serde() {
    let g = gen::grid(6, 6);
    let mut session = Session::on(&g)
        .partition(gen::rows_of_grid(6, 6))
        .config(fast_config())
        .build()
        .unwrap();
    let values: Vec<u64> = (0..36).collect();
    let _ = session.aggregate(&values, AggOp::Sum);
    let _ = session.aggregate(&values, AggOp::Max);
    let _ = reassign_one_boundary_node(&mut session).expect("grid rows have valid moves");
    let _ = session.aggregate(&values, AggOp::Min);
    let stats = *session.cache_stats();
    assert_eq!(stats.full.builds, 1);
    assert_eq!(stats.recustomizations, 1);
    assert!(stats.op_artifacts.builds >= 1);
    assert_eq!(roundtrip(&stats), stats, "CacheStats serde round trip");
}

/// `message_packing = 0` survives serde verbatim (no silent schema
/// rewrite) and is normalized to 1 in exactly one place — simulator
/// construction — so a zero-packing config behaves bit-identically to an
/// explicit 1.
#[test]
fn packing_zero_roundtrips_and_normalizes_at_construction() {
    let zero = SimConfig {
        message_packing: 0,
        ..SimConfig::default()
    };
    let restored = roundtrip(&zero);
    assert_eq!(
        restored.message_packing, 0,
        "serde must not rewrite the stored config"
    );

    let g = gen::grid(6, 6);
    let run = |sim: SimConfig| {
        let mut session = Session::on(&g)
            .partition(gen::rows_of_grid(6, 6))
            .backend(Backend::Distributed(sim))
            .config(SessionConfig {
                sim,
                ..fast_config()
            })
            .build()
            .unwrap();
        let values: Vec<u64> = (0..36).collect();
        session.aggregate(&values, AggOp::Sum)
    };
    let (zero_run, one_run) = (
        run(restored),
        run(SimConfig {
            message_packing: 1,
            ..SimConfig::default()
        }),
    );
    assert_eq!(zero_run.result.results, one_run.result.results);
    assert_eq!(zero_run.rounds, one_run.rounds);
    assert_eq!(zero_run.messages, one_run.messages);
    assert_eq!(zero_run.bits, one_run.bits);
}

#[test]
fn legacy_configs_roundtrip() {
    use low_congestion_shortcuts::algos::mincut::MincutConfig;
    use low_congestion_shortcuts::algos::mst::{BoruvkaConfig, ShortcutProvider};
    use low_congestion_shortcuts::partwise::{PartwiseConfig, UnicastConfig};

    let pw = PartwiseConfig {
        delay_range: 7,
        seed: 123,
        sim: SimConfig {
            mode: SimMode::Queued,
            threads: 3,
            ..SimConfig::default()
        },
    };
    assert_eq!(roundtrip(&pw), pw);

    let uc = UnicastConfig {
        delay_range: 4,
        seed: 99,
        sim: SimConfig::default(),
    };
    assert_eq!(roundtrip(&uc), uc);

    for provider in [
        ShortcutProvider::MinorSweepOracle(ShortcutConfig::default()),
        ShortcutProvider::MinorSweepDistributed(
            ShortcutConfig::default(),
            DistConfig {
                mode: DistMode::Sketch {
                    t: 16,
                    hash_seed: 1,
                    cut_factor: 1.25,
                },
                sim: SimConfig::default(),
            },
        ),
        ShortcutProvider::Baseline,
        ShortcutProvider::None,
    ] {
        let bc = BoruvkaConfig {
            provider,
            partwise: pw,
            seed: 5,
            max_phases: Some(40),
            skip_small_fragments: false,
        };
        assert_eq!(roundtrip(&bc), bc);

        let mc = MincutConfig {
            trees: Some(6),
            boruvka: bc.clone(),
        };
        assert_eq!(roundtrip(&mc), mc);
    }
}
