//! The `ShortcutSession` facade: cached-artifact reuse, backend
//! equivalence, and the unified `SessionConfig`.
//!
//! The serving scenario the facade exists for: prepare one topology, then
//! answer many queries. These tests pin (a) that repeated operations reuse
//! the cached shortcut (counted constructions), (b) that `session.aggregate`
//! matches `centralized_aggregate` on the 50-seed × 3-family differential
//! corpus on **all three backends**, and (c) that `SessionConfig` and the
//! legacy config structs it absorbs survive serde round trips, with a
//! pinned JSON snapshot of the defaults.

use lcs_graph::weights::EdgeWeights;
use low_congestion_shortcuts::algos::mst::kruskal;
use low_congestion_shortcuts::congest::{SimConfig, SimMode};
use low_congestion_shortcuts::core::dist::{DistConfig, DistMode};
use low_congestion_shortcuts::core::WitnessMode;
use low_congestion_shortcuts::facade::*;
use low_congestion_shortcuts::partwise::centralized_aggregate;
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Simulator packing factor for the differential corpus (CI also runs it
/// at `LCS_SIM_PACKING=8`; results must be identical).
fn env_packing() -> usize {
    std::env::var("LCS_SIM_PACKING")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn env_sim() -> SimConfig {
    SimConfig {
        message_packing: env_packing(),
        ..SimConfig::default()
    }
}

fn fast_config() -> SessionConfig {
    SessionConfig {
        shortcut: ShortcutConfig {
            witness_mode: WitnessMode::Skip,
            ..ShortcutConfig::default()
        },
        sim: env_sim(),
        ..SessionConfig::default()
    }
}

/// Acceptance criterion of the facade: the second aggregate call on the
/// same session must reuse the cached shortcut.
#[test]
fn second_aggregate_reuses_cached_shortcut() {
    let g = gen::grid(8, 8);
    let mut session = Session::on(&g)
        .tree(TreeSource::Bfs(NodeId(0)))
        .partition(gen::rows_of_grid(8, 8))
        .backend(Backend::Centralized)
        .build()
        .unwrap();
    assert_eq!(session.constructions(), 0, "build is lazy");

    let values: Vec<u64> = (0..64).collect();
    let first = session.aggregate(&values, AggOp::Max);
    assert_eq!(session.constructions(), 1, "first call constructs");
    let second = session.aggregate(&values, AggOp::Sum);
    let third = session.gossip(
        &values,
        low_congestion_shortcuts::partwise::IdempotentOp::Min,
    );
    assert_eq!(
        session.constructions(),
        1,
        "later ops must reuse the cached shortcut"
    );
    assert!(first.result.all_members_informed);
    assert!(second.result.all_members_informed);
    assert!(third.result.converged);
    // The uniform report carries cost and execution configuration.
    assert!(first.rounds > 0 && first.messages > 0 && first.bits > 0);
    assert_eq!(first.threads, 1);
    assert!(first.bandwidth_bits > 0);
    let q = first
        .quality
        .expect("partition ops carry the quality report");
    assert!(q.tree_restricted);
}

fn backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("centralized", Backend::Centralized),
        ("distributed", Backend::Distributed(env_sim())),
        (
            "sketch",
            Backend::Sketch(DistConfig {
                mode: DistMode::Sketch {
                    t: 8,
                    hash_seed: 0xbeef,
                    cut_factor: 1.0,
                },
                sim: env_sim(),
            }),
        ),
    ]
}

fn assert_session_matches_centralized(g: &Graph, parts: Vec<Vec<NodeId>>, label: &str) {
    let partition = Partition::from_parts(g, parts).unwrap();
    let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| (x * 131) % 997).collect();
    let expect = centralized_aggregate(&partition, &values, AggOp::Sum);
    for (name, backend) in backends() {
        let mut session = Session::on(g)
            .partition_object(partition.clone())
            .backend(backend)
            .config(fast_config())
            .build()
            .unwrap();
        let out = session.aggregate(&values, AggOp::Sum);
        assert!(
            out.result.all_members_informed,
            "{label}/{name}: all members informed"
        );
        let got: Vec<u64> = out.result.results.iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, expect, "{label}/{name}: aggregate differs");
        assert_eq!(session.constructions(), 1, "{label}/{name}");
    }
}

const DIFFERENTIAL_SEEDS: u64 = 50;

#[test]
fn session_aggregate_matches_centralized_on_gnm_all_backends() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::gnm_connected(120, 240, &mut rng);
        let parts = gen::random_connected_parts(&g, 30, &mut rng);
        assert_session_matches_centralized(&g, parts, &format!("gnm seed {seed}"));
    }
}

#[test]
fn session_aggregate_matches_centralized_on_tori_all_backends() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let rows = 4 + (seed as usize % 5);
        let cols = 4 + ((seed as usize / 5) % 5);
        let g = gen::torus(rows, cols);
        let k = 1 + (seed as usize % (g.num_nodes() / 2));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        assert_session_matches_centralized(&g, parts, &format!("torus seed {seed}"));
    }
}

#[test]
fn session_aggregate_matches_centralized_on_ktrees_all_backends() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let n = 40 + (seed as usize % 80);
        let g = gen::ktree(n, 3, &mut rng);
        let k = 1 + (seed as usize % (n / 4));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        assert_session_matches_centralized(&g, parts, &format!("ktree seed {seed}"));
    }
}

/// The algorithm surface: MST ≡ Kruskal, components ≡ centralized count,
/// mincut ≥ exact, all driven through one session without a partition.
#[test]
fn algorithm_ops_run_through_the_session() {
    let g = gen::grid(6, 6);
    let mut rng = SmallRng::seed_from_u64(9);
    let weights = EdgeWeights::random_unique(&g, &mut rng);
    let mut session = Session::on(&g).build().unwrap();

    let mst = session.mst(&weights);
    assert_eq!(mst.result.edges, kruskal(&g, &weights));
    assert!(mst.rounds > 0 && mst.messages > 0 && mst.bits > 0);
    assert!(mst.quality.is_none(), "fragment ops carry no quality");

    let comps = session.components();
    assert_eq!(comps.result.count, 1);

    let cut = session.mincut();
    let exact = low_congestion_shortcuts::algos::mincut::stoer_wagner(&g);
    assert!(cut.result.estimate >= exact);
    assert_eq!(cut.result.estimate, exact, "grid cuts are found exactly");
    assert!(cut.messages > 0 && cut.bits > 0);
}

/// Unicast rides on the cached tree only — it must not trigger a shortcut
/// construction.
#[test]
fn unicast_uses_the_tree_without_constructing_shortcuts() {
    let g = gen::grid(8, 8);
    let mut session = Session::on(&g)
        .partition(gen::rows_of_grid(8, 8))
        .build()
        .unwrap();
    let demands: Vec<(NodeId, NodeId)> = (0..16).map(|i| (NodeId(i), NodeId(63 - i))).collect();
    let out = session.unicast(&demands);
    assert_eq!(out.result.delivered, 16);
    assert_eq!(
        session.constructions(),
        0,
        "routing must not build shortcuts"
    );
}

/// A provided shortcut (e.g. deserialized from a prior run) is served
/// as-is — the production serving path.
#[test]
fn deserialized_shortcut_serves_a_fresh_session() {
    let g = gen::grid(6, 6);
    let parts = gen::rows_of_grid(6, 6);
    let mut builder_session = Session::on(&g).partition(parts.clone()).build().unwrap();
    let json = serde_json::to_string(builder_session.shortcut()).unwrap();

    let restored: Shortcut = serde_json::from_str(&json).unwrap();
    let mut serving = Session::on(&g)
        .partition(parts)
        .shortcut(restored)
        .build()
        .unwrap();
    let values = vec![1u64; 36];
    let out = serving.aggregate(&values, AggOp::Sum);
    assert_eq!(out.result.results, vec![Some(6); 6]);
    assert_eq!(
        serving.constructions(),
        0,
        "served from the provided artifact"
    );
}

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn session_config_roundtrips_and_default_snapshot_is_pinned() {
    let mut cfg = SessionConfig::default();
    cfg.shortcut.witness_mode = WitnessMode::Sampled { attempts: 3 };
    cfg.sim.mode = SimMode::Queued;
    cfg.sim.threads = 4;
    cfg.aggregate.delay_range = 9;
    cfg.aggregate.sim = Some(SimConfig {
        threads: 2,
        ..SimConfig::default()
    });
    cfg.mst.max_phases = Some(12);
    cfg.mincut.trees = Some(5);
    assert_eq!(roundtrip(&cfg), cfg);

    // Pinned snapshot of the defaults: changing any default or renaming a
    // field is a config-compatibility break and must be deliberate.
    let snapshot = serde_json::to_string(&SessionConfig::default()).unwrap();
    assert_eq!(snapshot, SNAPSHOT, "SessionConfig default schema drifted");
}

/// The serialized `SessionConfig::default()` — the on-disk schema a
/// serving deployment would persist.
const SNAPSHOT: &str = "{\"shortcut\":{\"initial_delta_hat\":1,\"congestion_factor\":8,\
\"block_factor\":8,\"witness_mode\":\"Derandomized\",\"seed\":1554098974},\
\"sim\":{\"mode\":\"Strict\",\"bandwidth_bits\":null,\"max_rounds\":1000000,\
\"seed\":12648430,\"threads\":1,\"message_packing\":1},\
\"aggregate\":{\"delay_range\":0,\"seed\":909743,\"sim\":null},\
\"unicast\":{\"delay_range\":0,\"seed\":1047,\"sim\":null},\
\"mst\":{\"seed\":11577874,\"max_phases\":null,\"skip_small_fragments\":true,\"sim\":null},\
\"mincut\":{\"trees\":null,\"sim\":null}}";

#[test]
fn legacy_configs_roundtrip() {
    use low_congestion_shortcuts::algos::mincut::MincutConfig;
    use low_congestion_shortcuts::algos::mst::{BoruvkaConfig, ShortcutProvider};
    use low_congestion_shortcuts::partwise::{PartwiseConfig, UnicastConfig};

    let pw = PartwiseConfig {
        delay_range: 7,
        seed: 123,
        sim: SimConfig {
            mode: SimMode::Queued,
            threads: 3,
            ..SimConfig::default()
        },
    };
    assert_eq!(roundtrip(&pw), pw);

    let uc = UnicastConfig {
        delay_range: 4,
        seed: 99,
        sim: SimConfig::default(),
    };
    assert_eq!(roundtrip(&uc), uc);

    for provider in [
        ShortcutProvider::MinorSweepOracle(ShortcutConfig::default()),
        ShortcutProvider::MinorSweepDistributed(
            ShortcutConfig::default(),
            DistConfig {
                mode: DistMode::Sketch {
                    t: 16,
                    hash_seed: 1,
                    cut_factor: 1.25,
                },
                sim: SimConfig::default(),
            },
        ),
        ShortcutProvider::Baseline,
        ShortcutProvider::None,
    ] {
        let bc = BoruvkaConfig {
            provider,
            partwise: pw,
            seed: 5,
            max_phases: Some(40),
            skip_small_fragments: false,
        };
        assert_eq!(roundtrip(&bc), bc);

        let mc = MincutConfig {
            trees: Some(6),
            boruvka: bc.clone(),
        };
        assert_eq!(roundtrip(&mc), mc);
    }
}
