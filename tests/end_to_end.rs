//! Cross-crate integration: the full pipeline from graph generation through
//! shortcut construction, quality verification, part-wise aggregation, and
//! the distributed algorithms.

use lcs_graph::weights::EdgeWeights;
use low_congestion_shortcuts::algos::mst::{
    distributed_mst, kruskal, BoruvkaConfig, ShortcutProvider,
};
use low_congestion_shortcuts::congest::protocols::AggOp;
use low_congestion_shortcuts::core::dist::{
    distributed_full_shortcut, distributed_partial_shortcut, DistConfig,
};
use low_congestion_shortcuts::core::{SweepOutcome, WitnessMode};
use low_congestion_shortcuts::partwise::{centralized_aggregate, solve_partwise, PartwiseConfig};
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn pipeline(g: &Graph, parts: Vec<Vec<NodeId>>, seed: u64) {
    let partition = Partition::from_parts(g, parts).expect("valid partition");
    let tree = bfs::bfs_tree(g, NodeId(0));
    let d = tree.depth_of_tree();

    // 1. Full shortcut respects every Theorem 1.2 bound.
    let built = full_shortcut(g, &tree, &partition, &ShortcutConfig::default());
    let q = measure_quality(g, &partition, &tree, &built.shortcut);
    assert!(q.tree_restricted);
    assert!(q.all_connected());
    assert!(q.max_blocks <= 8 * built.delta_hat + 1);
    assert!(q.max_congestion <= 8 * built.delta_hat * d * built.successful_rounds.max(1) as u32);
    assert!(q.max_dilation_upper <= (8 * built.delta_hat + 1) * (2 * d + 1));

    // 2. Any certificate produced along the way is a real dense minor.
    if let Some(w) = &built.best_witness {
        minor::verify_minor(g, w).expect("witness verifies");
        assert!(w.density() > 1.0);
    }

    // 3. Part-wise aggregation over the shortcut matches the centralized
    //    reference for every operator.
    let mut rng = SmallRng::seed_from_u64(seed);
    let values: Vec<u64> = (0..g.num_nodes())
        .map(|_| rand::Rng::gen_range(&mut rng, 0..1_000_000))
        .collect();
    for op in [AggOp::Min, AggOp::Max, AggOp::Sum] {
        let out = solve_partwise(
            g,
            &partition,
            &built.shortcut,
            &values,
            op,
            None,
            &PartwiseConfig::default(),
        );
        assert!(
            out.all_members_informed,
            "all members must learn the result"
        );
        let expect = centralized_aggregate(&partition, &values, op);
        let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, expect);
    }
}

#[test]
fn pipeline_on_grid_rows() {
    let g = gen::grid(10, 10);
    pipeline(&g, gen::rows_of_grid(10, 10), 1);
}

#[test]
fn pipeline_on_torus_voronoi() {
    let g = gen::torus(8, 8);
    let mut rng = SmallRng::seed_from_u64(2);
    let parts = gen::random_connected_parts(&g, 12, &mut rng);
    pipeline(&g, parts, 2);
}

#[test]
fn pipeline_on_ktree() {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = gen::ktree(150, 3, &mut rng);
    let parts = gen::random_connected_parts(&g, 15, &mut rng);
    pipeline(&g, parts, 3);
}

#[test]
fn pipeline_on_comb() {
    let comb = gen::comb(8, 24);
    pipeline(&comb.graph, comb.parts, 4);
}

#[test]
fn pipeline_on_lower_bound_topology() {
    let lb = gen::lower_bound_topology(5, 24);
    // Root the partition pipeline at node 0 (a top-path node).
    pipeline(&lb.graph, lb.rows, 5);
}

/// Simulator packing factor for the differential corpus. CI also runs the
/// 50-seed suites under `LCS_SIM_PACKING=8`: the multi-value packed
/// construction must reproduce the centralized cut set exactly like the
/// unpacked one.
fn env_packing() -> usize {
    std::env::var("LCS_SIM_PACKING")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Differential check: `DistMode::Exact` must reproduce the centralized
/// sweep's cut set edge-for-edge on `g` with the given partition.
fn assert_distributed_matches_centralized(g: &Graph, parts: Vec<Vec<NodeId>>, label: &str) {
    use low_congestion_shortcuts::congest::SimConfig;
    let partition = Partition::from_parts(g, parts).unwrap();
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let dist_cfg = DistConfig {
        sim: SimConfig {
            message_packing: env_packing(),
            ..SimConfig::default()
        },
        ..DistConfig::default()
    };
    let dist = distributed_partial_shortcut(g, NodeId(0), &partition, 1, &cfg, &dist_cfg);
    let tree = bfs::bfs_tree(g, NodeId(0));
    let central = partial_shortcut_or_witness(g, &tree, &partition, 1, &cfg);
    let central_cuts: Vec<_> = match &central {
        SweepOutcome::Shortcut(ps) => ps.data.over_edges.iter().map(|oe| oe.edge).collect(),
        SweepOutcome::DenseMinor { data, .. } => data.over_edges.iter().map(|oe| oe.edge).collect(),
    };
    let mut a = dist.over_edges.clone();
    a.sort_unstable();
    let mut b = central_cuts;
    b.sort_unstable();
    assert_eq!(a, b, "{label}: exact mode must match the centralized sweep");
}

const DIFFERENTIAL_SEEDS: u64 = 50;

#[test]
fn distributed_construction_agrees_with_centralized_on_gnm() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::gnm_connected(120, 240, &mut rng);
        let parts = gen::random_connected_parts(&g, 30, &mut rng);
        assert_distributed_matches_centralized(&g, parts, &format!("gnm seed {seed}"));
    }
}

#[test]
fn distributed_construction_agrees_with_centralized_on_tori() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let rows = 4 + (seed as usize % 5);
        let cols = 4 + ((seed as usize / 5) % 5);
        let g = gen::torus(rows, cols);
        let k = 1 + (seed as usize % (g.num_nodes() / 2));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        assert_distributed_matches_centralized(&g, parts, &format!("torus seed {seed}"));
    }
}

#[test]
fn distributed_construction_agrees_with_centralized_on_ktrees() {
    for seed in 0..DIFFERENTIAL_SEEDS {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let n = 40 + (seed as usize % 80);
        let g = gen::ktree(n, 3, &mut rng);
        let k = 1 + (seed as usize % (n / 4));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        assert_distributed_matches_centralized(&g, parts, &format!("ktree seed {seed}"));
    }
}

#[test]
fn distributed_full_shortcut_passes_quality_bounds() {
    let g = gen::grid(10, 10);
    let partition = Partition::from_parts(&g, gen::rows_of_grid(10, 10)).unwrap();
    let res = distributed_full_shortcut(
        &g,
        NodeId(0),
        &partition,
        &ShortcutConfig::default(),
        &DistConfig::default(),
    );
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let q = measure_quality(&g, &partition, &tree, &res.shortcut);
    assert!(q.tree_restricted && q.all_connected());
    assert!(q.max_blocks <= 8 * res.delta_hat + 1);
}

#[test]
fn mst_exact_across_providers_and_families() {
    let cases: Vec<Graph> = vec![gen::grid(8, 8), gen::torus(6, 6), gen::wheel(40), {
        let mut rng = SmallRng::seed_from_u64(7);
        gen::gnm_connected(80, 160, &mut rng)
    }];
    for (i, g) in cases.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(100 + i as u64);
        let w = EdgeWeights::random_unique(g, &mut rng);
        let reference = kruskal(g, &w);
        for provider in [
            ShortcutProvider::MinorSweepOracle(ShortcutConfig::default()),
            ShortcutProvider::Baseline,
            ShortcutProvider::None,
        ] {
            let cfg = BoruvkaConfig {
                provider,
                ..BoruvkaConfig::default()
            };
            let rep = distributed_mst(g, &w, NodeId(0), &cfg);
            assert_eq!(rep.edges, reference, "family {i} provider mismatch");
        }
    }
}

use low_congestion_shortcuts::core::partial_shortcut_or_witness;
