//! Simulator conformance: the batched-delivery engine must reproduce the
//! seed engine's execution metrics exactly.
//!
//! The pinned corpus below was generated on the pre-CSR seed engine
//! (per-directed-edge `VecDeque` mailboxes, commit `a3f13c8`) by running
//! this test with an empty `PINNED` table, which prints the actual rows.
//! Every later engine change must keep `(rounds, messages, bits,
//! max_queue)` identical on these seeded instances.
//!
//! One deliberate re-pin: the `bits` column was regenerated when message
//! sizing became `n`-aware (`MessageSize::size_bits_in` /
//! `lcs_congest::id_bits`) — id payloads (BFS distances, part ids) are now
//! billed at `id_bits(n)` instead of a fixed 32 bits, so bits-metrics
//! scale as `O(log n)` like the CONGEST model assumes. Rounds, messages,
//! and max_queue are untouched by sizing and still match the seed engine.
//!
//! Scope: the corpus pins *metrics*, not inbox contents. Within-round
//! inbox ordering is unspecified (see [`Incoming`]) and did change in the
//! strict-mode rewrite; the repo's protocols are arrival-order
//! independent, which is exactly why the pinned metrics stay identical.
//!
//! The corpus runs at `threads` ∈ {1, 2, 4, 8}: the decentralized
//! executor reconstructs the exact global sequence numbers from per-shard
//! send counts (a prefix sum in shard order) and folds per-shard accounts
//! in shard order, so every pinned number must be independent of the lane
//! count. `LCS_SIM_THREADS` (used by CI) additionally overrides the
//! thread count of the env-driven run.
//!
//! **Packing conformance** (`LCS_SIM_PACKING`, used by CI at `8`): with
//! multi-value message packing enabled the corpus cannot match the
//! unpacked pins exactly — that is the whole point of packing — so the
//! env-driven run switches to the packed contract instead: every metric
//! column stays **at or below** its pinned unpacked value (packing may
//! only coalesce, never inflate), and the protocol *results* (BFS
//! distances/parents, detection cut sets, assembled shortcuts) are
//! **bit-identical** to a `message_packing = 1` run of the same corpus.
//!
//! [`Incoming`]: low_congestion_shortcuts::congest::Incoming

use low_congestion_shortcuts::congest::protocols::BfsTreeProgram;
use low_congestion_shortcuts::congest::{
    Ctx, Incoming, NodeProgram, RunMetrics, SimConfig, SimMode, Simulator,
};
use low_congestion_shortcuts::core::dist::{distributed_partial_shortcut, DistConfig};
use low_congestion_shortcuts::core::{Partition, ShortcutConfig, WitnessMode};
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// `(case, rounds, messages, bits, max_queue)`: rounds/messages/max_queue
/// pinned on the seed engine; bits pinned under the id-aware sizing (see
/// module docs). Spot-check of `bfs/grid8x8`: 224 messages = 161 `Dist`
/// (1 + id_bits(64) = 8 bits) + 63 `Adopt` (1 bit) = 1351 bits.
const PINNED: &[(&str, u64, u64, u64, u64)] = &[
    ("bfs/grid8x8", 15, 224, 1351, 1),
    ("bfs/grid20x20", 39, 1520, 11609, 1),
    ("bfs/grid8x8_queued", 15, 224, 1351, 1),
    ("bfs/torus10x10", 11, 400, 2507, 1),
    ("bfs/path50", 50, 98, 392, 1),
    ("bfs/star33", 2, 64, 256, 1),
    ("bfs/gnm200", 6, 800, 5608, 1),
    ("bfs/ktree150", 4, 888, 6800, 1),
    ("partial/grid8x8_singletons/bfs", 15, 224, 1351, 1),
    ("partial/grid8x8_singletons/detect", 266, 511, 4158, 57),
    ("partial/torus8x8_voronoi/bfs", 9, 256, 1607, 1),
    ("partial/torus8x8_voronoi/detect", 34, 194, 1305, 9),
    ("partial/gnm120/bfs", 8, 480, 3007, 1),
    ("partial/gnm120/detect", 59, 376, 2551, 30),
];

/// One corpus case: the pinned metric columns plus a rendered fingerprint
/// of the protocol's *result* (BFS distances/parents or detection cut set
/// + shortcut), which packed runs must reproduce bit-identically.
struct Row {
    case: String,
    rounds: u64,
    messages: u64,
    bits: u64,
    max_queue: u64,
    fingerprint: String,
}

fn row(case: &str, m: &RunMetrics, fingerprint: String) -> Row {
    Row {
        case: case.to_string(),
        rounds: m.rounds,
        messages: m.messages,
        bits: m.bits,
        max_queue: m.max_queue,
        fingerprint,
    }
}

/// Thread-count override for the env-driven conformance run (CI sets it).
fn env_threads() -> usize {
    std::env::var("LCS_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Packing override for the env-driven conformance run (CI sets it to 8).
fn env_packing() -> usize {
    std::env::var("LCS_SIM_PACKING")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn bfs_metrics(case: &str, g: &Graph, mode: SimMode, threads: usize, packing: usize) -> Row {
    let sim = Simulator::new(
        g,
        SimConfig {
            mode,
            threads,
            message_packing: packing,
            ..SimConfig::default()
        },
    );
    let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
    assert!(run.metrics.terminated, "{case}: BFS must quiesce");
    let fingerprint = format!(
        "{:?}",
        run.programs
            .iter()
            .map(|p| (p.dist(), p.parent_port()))
            .collect::<Vec<_>>()
    );
    row(case, &run.metrics, fingerprint)
}

fn partial_metrics(
    case: &str,
    g: &Graph,
    parts: Vec<Vec<NodeId>>,
    threads: usize,
    packing: usize,
) -> Vec<Row> {
    let partition = Partition::from_parts(g, parts).unwrap();
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let dist = DistConfig {
        sim: SimConfig {
            threads,
            message_packing: packing,
            ..SimConfig::default()
        },
        ..DistConfig::default()
    };
    let res = distributed_partial_shortcut(g, NodeId(0), &partition, 1, &cfg, &dist);
    assert!(res.metrics_bfs.terminated && res.metrics_shortcut.terminated);
    let mut cuts = res.over_edges.clone();
    cuts.sort_unstable();
    let fingerprint = format!("cuts {cuts:?} / shortcut {:?}", res.shortcut);
    // Fingerprint the BFS phase by replaying the identical deterministic
    // run the pipeline executed (same graph, root, and sim config) — the
    // pipeline does not expose its program states directly.
    let bfs_fp = {
        let replay = Simulator::new(g, dist.sim).run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
        assert_eq!(
            (
                replay.metrics.rounds,
                replay.metrics.messages,
                replay.metrics.bits
            ),
            (
                res.metrics_bfs.rounds,
                res.metrics_bfs.messages,
                res.metrics_bfs.bits
            ),
            "{case}: BFS replay must be the pipeline's own run"
        );
        format!(
            "{:?}",
            replay
                .programs
                .iter()
                .map(|p| (p.dist(), p.parent_port()))
                .collect::<Vec<_>>()
        )
    };
    vec![
        row(&format!("{case}/bfs"), &res.metrics_bfs, bfs_fp),
        row(
            &format!("{case}/detect"),
            &res.metrics_shortcut,
            fingerprint,
        ),
    ]
}

fn run_corpus(threads: usize, packing: usize) -> Vec<Row> {
    let mut rows = vec![
        bfs_metrics(
            "bfs/grid8x8",
            &gen::grid(8, 8),
            SimMode::Strict,
            threads,
            packing,
        ),
        bfs_metrics(
            "bfs/grid20x20",
            &gen::grid(20, 20),
            SimMode::Strict,
            threads,
            packing,
        ),
        bfs_metrics(
            "bfs/grid8x8_queued",
            &gen::grid(8, 8),
            SimMode::Queued,
            threads,
            packing,
        ),
        bfs_metrics(
            "bfs/torus10x10",
            &gen::torus(10, 10),
            SimMode::Strict,
            threads,
            packing,
        ),
        bfs_metrics(
            "bfs/path50",
            &gen::path(50),
            SimMode::Strict,
            threads,
            packing,
        ),
        bfs_metrics(
            "bfs/star33",
            &gen::star(33),
            SimMode::Strict,
            threads,
            packing,
        ),
    ];
    {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gen::gnm_connected(200, 400, &mut rng);
        rows.push(bfs_metrics(
            "bfs/gnm200",
            &g,
            SimMode::Strict,
            threads,
            packing,
        ));
    }
    {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::ktree(150, 3, &mut rng);
        rows.push(bfs_metrics(
            "bfs/ktree150",
            &g,
            SimMode::Strict,
            threads,
            packing,
        ));
    }

    let g = gen::grid(8, 8);
    rows.extend(partial_metrics(
        "partial/grid8x8_singletons",
        &g,
        gen::singleton_parts(&g),
        threads,
        packing,
    ));
    {
        let t = gen::torus(8, 8);
        let mut rng = SmallRng::seed_from_u64(2);
        let parts = gen::random_connected_parts(&t, 12, &mut rng);
        rows.extend(partial_metrics(
            "partial/torus8x8_voronoi",
            &t,
            parts,
            threads,
            packing,
        ));
    }
    {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = gen::gnm_connected(120, 240, &mut rng);
        let parts = gen::random_connected_parts(&g, 30, &mut rng);
        rows.extend(partial_metrics(
            "partial/gnm120",
            &g,
            parts,
            threads,
            packing,
        ));
    }
    rows
}

fn assert_corpus_matches(threads: usize, packing: usize) {
    let actual = run_corpus(threads, packing);
    if PINNED.is_empty() {
        for r in &actual {
            println!(
                "    (\"{}\", {}, {}, {}, {}),",
                r.case, r.rounds, r.messages, r.bits, r.max_queue
            );
        }
        panic!("PINNED corpus is empty — paste the rows printed above");
    }
    assert_eq!(actual.len(), PINNED.len(), "corpus size changed");
    for (r, &(pc, pr, pm, pb, pq)) in actual.iter().zip(PINNED) {
        let case = &r.case;
        assert_eq!(case, pc, "corpus order changed");
        if packing <= 1 {
            assert_eq!(
                (r.rounds, r.messages, r.bits, r.max_queue),
                (pr, pm, pb, pq),
                "{case} (threads={threads}): metrics drifted from the pinned seed-engine corpus"
            );
        } else {
            // Packed contract: every column at or below its unpacked pin.
            assert!(
                r.rounds <= pr && r.messages <= pm && r.bits <= pb && r.max_queue <= pq,
                "{case} (threads={threads}, packing={packing}): packed metrics \
                 ({}, {}, {}, {}) exceed the unpacked pins ({pr}, {pm}, {pb}, {pq})",
                r.rounds,
                r.messages,
                r.bits,
                r.max_queue
            );
        }
    }
    if packing > 1 {
        // Result identity: the packed corpus must reproduce the unpacked
        // protocol outcomes bit for bit.
        let unpacked = run_corpus(threads, 1);
        let mut detect_rounds_dropped = false;
        for (p, u) in actual.iter().zip(&unpacked) {
            assert_eq!(
                p.fingerprint, u.fingerprint,
                "{} (threads={threads}, packing={packing}): packed result drifted",
                p.case
            );
            if p.case.ends_with("/detect") && p.rounds < u.rounds {
                detect_rounds_dropped = true;
            }
        }
        assert!(
            detect_rounds_dropped,
            "packing={packing} should cut rounds on at least one detection stream"
        );
    }
}

#[test]
fn metrics_match_pinned_seed_corpus() {
    assert_corpus_matches(env_threads(), env_packing());
}

/// The decentralized executor must be invisible in the metrics: the same
/// pinned corpus at every lane count the bench sweep uses (honoring
/// `LCS_SIM_PACKING` like the env-driven run).
#[test]
fn metrics_match_pinned_seed_corpus_threads2() {
    assert_corpus_matches(2, env_packing());
}

/// See [`metrics_match_pinned_seed_corpus_threads2`].
#[test]
fn metrics_match_pinned_seed_corpus_threads4() {
    assert_corpus_matches(4, env_packing());
}

/// See [`metrics_match_pinned_seed_corpus_threads2`].
#[test]
fn metrics_match_pinned_seed_corpus_threads8() {
    assert_corpus_matches(8, env_packing());
}

/// Strict mode must keep rejecting a double send over one directed edge in
/// one round (the rewrite batches sends, so the check moved from queue push
/// to the pending arena — behavior must be unchanged).
#[test]
fn strict_mode_still_panics_on_double_send() {
    struct DoubleSend;
    impl NodeProgram for DoubleSend {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.node() == NodeId(0) {
                ctx.send(0, 1);
                ctx.send(0, 2);
            }
        }
        fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
        fn is_done(&self) -> bool {
            true
        }
    }
    let g = gen::path(2);
    let sim = Simulator::new(&g, SimConfig::default());
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(|_, _| DoubleSend)));
    assert!(result.is_err(), "strict double-send must panic");
}

/// Queued mode preserves per-edge (priority, FIFO) order: lower priority
/// values drain first, ties drain in send order — including across rounds.
#[test]
fn queued_mode_preserves_priority_then_fifo_order() {
    struct Sender {
        round: u32,
    }
    struct Recorder(Vec<u32>);
    enum P {
        S(Sender),
        R(Recorder),
    }
    impl NodeProgram for P {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if let P::S(_) = self {
                // Same priority: FIFO among 40, 41; priority 0 beats them.
                ctx.send_with_priority(0, 40, 4);
                ctx.send_with_priority(0, 41, 4);
                ctx.send_with_priority(0, 10, 0);
                ctx.wake_next_round();
            }
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            match self {
                P::S(s) => {
                    if s.round == 0 {
                        s.round = 1;
                        // Arrives while 40/41 still queue: priority 1 jumps
                        // ahead of them, priority 4 queues behind (FIFO).
                        ctx.send_with_priority(0, 20, 1);
                        ctx.send_with_priority(0, 42, 4);
                    }
                }
                P::R(r) => r.0.extend(inbox.iter().map(|m| m.msg)),
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    let g = gen::path(2);
    let sim = Simulator::new(
        &g,
        SimConfig {
            mode: SimMode::Queued,
            ..SimConfig::default()
        },
    );
    let run = sim.run(|v, _| {
        if v == NodeId(0) {
            P::S(Sender { round: 0 })
        } else {
            P::R(Recorder(Vec::new()))
        }
    });
    assert!(run.metrics.terminated);
    let P::R(r) = &run.programs[1] else {
        panic!("node 1 records");
    };
    // Round 1 delivers 10 (priority 0, queued first by priority). The
    // round-1 sends then join the queue, so: 20 (priority 1), then the
    // priority-4 class in FIFO order 40, 41, 42.
    assert_eq!(r.0, vec![10, 20, 40, 41, 42]);
}

/// Far-future-priority case: one round enqueues a backlog far deeper than
/// the calendar-queue horizon (64 rounds), so most deliveries are scheduled
/// through the overflow ring. The CONGEST queue discipline is unchanged by
/// the scheduling structure: exactly one delivery per round in ascending
/// `(priority, seq)` order, and the metrics are the analytically pinned
/// ones (`rounds = messages = max_queue = backlog`, one u32 per message).
/// Run at every lane count — each lane schedules its own partition.
#[test]
fn queued_mode_drains_deep_backlogs_in_slot_order() {
    const BACKLOG: u32 = 100;
    struct Sender;
    struct Recorder(Vec<u32>);
    enum P {
        S(Sender),
        R(Recorder),
    }
    impl NodeProgram for P {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if let P::S(_) = self {
                // Send values 1..=BACKLOG with *descending* priorities, so
                // the delivery order (ascending priority) reverses the send
                // order — every insert preempts the queued backlog.
                for v in 1..=BACKLOG {
                    ctx.send_with_priority(0, v, u64::from(BACKLOG - v + 1));
                }
            }
        }
        fn on_round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            if let P::R(r) = self {
                assert!(inbox.len() <= 1, "one delivery per directed edge per round");
                r.0.extend(inbox.iter().map(|m| m.msg));
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    for threads in [1, 2, 4, 8] {
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                threads,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| {
            if v == NodeId(0) {
                P::S(Sender)
            } else {
                P::R(Recorder(Vec::new()))
            }
        });
        assert!(run.metrics.terminated);
        assert_eq!(run.metrics.rounds, u64::from(BACKLOG));
        assert_eq!(run.metrics.messages, u64::from(BACKLOG));
        assert_eq!(run.metrics.bits, u64::from(BACKLOG) * 32);
        assert_eq!(run.metrics.max_queue, u64::from(BACKLOG));
        let P::R(r) = &run.programs[1] else {
            panic!("node 1 records");
        };
        let expect: Vec<u32> = (1..=BACKLOG).rev().collect();
        assert_eq!(r.0, expect, "threads={threads}");
    }
}

/// Delivery-time merging, end to end: the middle node of a 3-path bursts
/// sends *interleaved* across its two ports, which defeats send-side
/// packing (only consecutive same-`(port, priority)` sends pack), so the
/// per-edge backlogs can only be coalesced by the calendar queue at
/// delivery time. With `message_packing = 8` and the default `n = 3`
/// budget of `4·id_bits(4) + 128 = 136` bits, a fired token may absorb up
/// to three queued `u32` follow-ups (4 × 32 = 128 ≤ 136 < 160), never
/// more — and bits are billed at send time, so the merged run's bit count
/// must equal the unpacked run's exactly. Per-edge FIFO within a priority
/// class must survive merging verbatim.
#[test]
fn queued_delivery_merging_respects_budget_and_fifo() {
    const PER_PORT: u32 = 6;
    struct Sender;
    struct Recorder {
        rounds: Vec<Vec<u32>>,
    }
    enum P {
        S(Sender),
        R(Recorder),
    }
    impl NodeProgram for P {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if let P::S(_) = self {
                // 1, 2, 3, … alternating port 0 / port 1: odd values to
                // one neighbor, even to the other, never two consecutive
                // sends on the same port.
                for k in 0..2 * PER_PORT {
                    ctx.send((k % 2) as usize, k + 1);
                }
            }
        }
        fn on_round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            if let P::R(r) = self {
                if !inbox.is_empty() {
                    r.rounds.push(inbox.iter().map(|m| m.msg).collect());
                }
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    let run_at = |threads: usize, packing: usize| {
        let g = gen::path(3);
        let sim = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                threads,
                message_packing: packing,
                ..SimConfig::default()
            },
        );
        sim.run(|v, _| {
            if v == NodeId(1) {
                P::S(Sender)
            } else {
                P::R(Recorder { rounds: Vec::new() })
            }
        })
    };
    for threads in [1, 4] {
        let unpacked = run_at(threads, 1);
        let packed = run_at(threads, 8);
        assert!(unpacked.metrics.terminated && packed.metrics.terminated);

        // Unpacked: one envelope per edge per round, PER_PORT rounds.
        assert_eq!(unpacked.metrics.rounds, u64::from(PER_PORT));
        assert_eq!(unpacked.metrics.messages, u64::from(2 * PER_PORT));

        // Merged: the first token on each edge absorbs 3 queued
        // follow-ups (budget-capped at 4 × 32 = 128 of 136 bits), the
        // next takes the remaining 2 — so 2 envelopes per edge, and the
        // backlog drains in 2 rounds instead of 6.
        assert_eq!(packed.metrics.rounds, 2);
        assert_eq!(packed.metrics.messages, 4);

        // Bits are billed when the send is validated, not when envelopes
        // merge: both runs bill 12 × 32 bits.
        assert_eq!(unpacked.metrics.bits, u64::from(2 * PER_PORT) * 32);
        assert_eq!(packed.metrics.bits, unpacked.metrics.bits);

        for (node, parity) in [(0usize, 0u32), (2, 1)] {
            let P::R(r) = &unpacked.programs[node] else {
                panic!("node {node} records");
            };
            let fifo: Vec<u32> = (0..PER_PORT).map(|i| 2 * i + 1 + parity).collect();
            assert!(r.rounds.iter().all(|v| v.len() == 1));
            assert_eq!(r.rounds.concat(), fifo, "threads={threads}");

            let P::R(r) = &packed.programs[node] else {
                panic!("node {node} records");
            };
            // Budget cap: never more than 4 values per merged envelope;
            // FIFO order concatenates back to the exact unpacked stream.
            assert_eq!(
                r.rounds.iter().map(Vec::len).collect::<Vec<_>>(),
                vec![4, 2],
                "threads={threads}"
            );
            assert_eq!(r.rounds.concat(), fifo, "threads={threads}");
        }
    }
}
