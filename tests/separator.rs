//! Property tests for the nested-dissection engine plus the hierarchy
//! differential: multi-level sessions must serve leaf-level op results
//! bit-identical to a flat session built on the same leaf partition.

use low_congestion_shortcuts::congest::protocols::AggOp;
use low_congestion_shortcuts::facade::{
    Backend, HierarchySession, SeparatorConfig, Session, SessionConfig, SessionPartwiseOps,
};
use low_congestion_shortcuts::graph::{components, gen, Graph};
use low_congestion_shortcuts::separator::nested_dissection;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A graph from any generator family the repo ships — planar, genus-1,
/// bounded-treewidth, trees, dense, and the adversarial comb.
fn arb_any_family() -> impl Strategy<Value = (Graph, &'static str)> {
    (0usize..8, 3usize..9, 3usize..9, 0u64..1000).prop_map(|(fam, a, b, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        match fam {
            0 => (gen::grid(a, b), "grid"),
            1 => (gen::torus(a, b), "torus"),
            2 => (gen::ktree(a * b, 3, &mut rng), "ktree"),
            3 => (gen::path(a * b), "path"),
            4 => (gen::binary_tree(1 + (a as u32 % 5)), "binary_tree"),
            5 => (gen::complete(a + b), "complete"),
            6 => (gen::wheel(a + b), "wheel"),
            _ => (gen::grid_of_cliques(a, b, 3), "grid_of_cliques"),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The classical balance guarantee on every cut region of the
    /// dissection tree: each component of `region \ separator` holds at
    /// most ⌊2n/3⌋ of the region's nodes.
    #[test]
    fn separator_is_balanced_on_all_families((g, family) in arb_any_family()) {
        let cfg = SeparatorConfig { min_region: 2, max_levels: 30 };
        let tree = nested_dissection(&g, &cfg);
        for node in &tree.nodes {
            if node.separator.is_empty() || node.is_leaf() {
                continue;
            }
            let n_r = node.region.len();
            let near_strict =
                tree.nodes[node.children[0]].region.len() - node.separator.len();
            prop_assert!(
                near_strict <= 2 * n_r / 3,
                "{family}: near side {near_strict} exceeds 2/3 of {n_r}"
            );
            for &c in &node.children[1..] {
                let far = tree.nodes[c].region.len();
                prop_assert!(
                    far <= 2 * n_r / 3,
                    "{family}: far side {far} exceeds 2/3 of {n_r}"
                );
            }
        }
    }

    /// Every dissection level is a covering partition into connected
    /// parts, on every family — the invariant the hierarchy sessions and
    /// the `separator` partition source both build on.
    #[test]
    fn every_level_is_a_connected_covering_partition((g, family) in arb_any_family()) {
        let cfg = SeparatorConfig { min_region: 4, max_levels: 30 };
        let tree = nested_dissection(&g, &cfg);
        for level in 0..tree.num_levels() {
            let parts = tree.partition_at_level(level);
            let covered: usize = parts.iter().map(Vec::len).sum();
            prop_assert!(
                covered == g.num_nodes(),
                "{}: level {} must cover V ({} of {})",
                family, level, covered, g.num_nodes()
            );
            let mut seen = vec![false; g.num_nodes()];
            for p in &parts {
                prop_assert!(
                    components::induces_connected(&g, p),
                    "{}: disconnected part at level {}", family, level
                );
                for &v in p {
                    prop_assert!(!seen[v.index()], "{}: overlap at {:?}", family, v);
                    seen[v.index()] = true;
                }
            }
        }
    }
}

/// The hierarchy differential: over 30 seeds × 3 minor-free families, a
/// [`HierarchySession`]'s leaf level must serve results **bit-identical**
/// to a flat session built directly on the leaf partition — same δ̂, same
/// quality report, same aggregate values, same simulated round/message
/// counts.
#[test]
fn hierarchy_leaf_is_bit_identical_to_flat_session() {
    for seed in 0..30u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = 4 + (seed as usize % 5);
        let b = 4 + (seed as usize / 5 % 5);
        for (g, family) in [
            (gen::grid(a, b), "grid"),
            (gen::torus(a, b), "torus"),
            (gen::ktree(a * b, 3, &mut rng), "ktree"),
        ] {
            let sep = SeparatorConfig {
                min_region: 4,
                max_levels: 30,
            };
            let mut h =
                HierarchySession::build(&g, &sep, Backend::Centralized, SessionConfig::default())
                    .unwrap_or_else(|e| panic!("{family}/seed {seed}: {e}"));
            let leaf_parts = h.tree().leaf_partition();
            let mut flat = Session::on(&g)
                .partition(leaf_parts)
                .build()
                .unwrap_or_else(|e| panic!("{family}/seed {seed}: {e}"));

            let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| x * 31 % 257).collect();
            let from_h = h.leaf_session().aggregate(&values, AggOp::Sum);
            let from_flat = flat.aggregate(&values, AggOp::Sum);
            assert_eq!(
                from_h.result.results, from_flat.result.results,
                "{family}/seed {seed}: aggregate results diverge"
            );
            assert_eq!(
                (from_h.rounds, from_h.messages),
                (from_flat.rounds, from_flat.messages),
                "{family}/seed {seed}: simulated cost diverges"
            );
            assert_eq!(
                h.leaf_session().delta_hat(),
                flat.delta_hat(),
                "{family}/seed {seed}: doubling search diverges"
            );
            assert_eq!(
                h.leaf_session().quality().clone(),
                flat.quality().clone(),
                "{family}/seed {seed}: quality reports diverge"
            );
        }
    }
}

/// `prepare_all` amortization sanity on top of the differential: warm
/// starts change no leaf-level artifact, and every level stays cached.
#[test]
fn prepare_all_leaves_leaf_results_untouched() {
    let g = gen::grid(9, 9);
    let sep = SeparatorConfig {
        min_region: 4,
        max_levels: 30,
    };
    let mut h =
        HierarchySession::build(&g, &sep, Backend::Centralized, SessionConfig::default()).unwrap();
    let values: Vec<u64> = (0..81).collect();
    let before = h.leaf_session().aggregate(&values, AggOp::Max);
    let dhs = h.prepare_all();
    let after = h.leaf_session().aggregate(&values, AggOp::Max);
    assert_eq!(before.result.results, after.result.results);
    assert_eq!(dhs[h.leaf_level()], h.leaf_session().delta_hat());
    assert_eq!(h.leaf_session().cache_stats().full.builds, 1);
}
