//! Ingestion invariants: `.lcsg` round trips are lossless across every
//! generator family, and every way a file can be corrupt maps to its
//! distinct typed [`IoError`] — never a panic, never a silently wrong
//! graph.

use lcs_core::{GeneratorSpec, GraphSource, GraphSourceError};
use lcs_graph::io::{self, IoError};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{gen, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Offset of the first section byte (the header is 40 bytes, see the
/// [`lcs_graph::io`] format table).
const SECTIONS: usize = 40;

/// 64-bit FNV-1a — reimplemented here so the tests can *re-seal* a
/// deliberately corrupted section and prove the structural validation
/// (not just the checksum) catches it.
fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Recomputes the checksum over the section bytes and writes it into the
/// header, so a mutated buffer passes the checksum gate again.
fn reseal(buf: &mut [u8]) {
    let sum = fnv1a(&buf[SECTIONS..]);
    buf[32..40].copy_from_slice(&sum.to_le_bytes());
}

fn encode(g: &Graph, weights: Option<&EdgeWeights>) -> Vec<u8> {
    let mut buf = Vec::new();
    io::write_graph(&mut buf, g, weights).expect("in-memory write");
    buf
}

fn decode_err(buf: &[u8]) -> IoError {
    io::read_graph(&mut &buf[..]).expect_err("corrupt file must not load")
}

/// Every generator family at a small size — the deterministic sweep the
/// property test widens.
fn all_families() -> Vec<GeneratorSpec> {
    vec![
        GeneratorSpec::Path { n: 5 },
        GeneratorSpec::Cycle { n: 6 },
        GeneratorSpec::Complete { n: 5 },
        GeneratorSpec::Wheel { n: 7 },
        GeneratorSpec::Grid { rows: 3, cols: 4 },
        GeneratorSpec::Torus { rows: 3, cols: 5 },
        GeneratorSpec::GridOfCliques {
            rows: 2,
            cols: 2,
            clique: 3,
        },
        GeneratorSpec::RoadLike {
            rows: 4,
            cols: 5,
            seed: 11,
        },
    ]
}

/// Picks one family and sizes it from the draws (the shimmed proptest has
/// no `prop_oneof`, so the family is an index draw).
fn spec_from(family: usize, a: usize, b: usize, seed: u64) -> GeneratorSpec {
    match family {
        0 => GeneratorSpec::Path { n: 1 + a },
        1 => GeneratorSpec::Cycle { n: 3 + a },
        2 => GeneratorSpec::Complete { n: 1 + a },
        3 => GeneratorSpec::Wheel { n: 4 + a },
        4 => GeneratorSpec::Grid {
            rows: 1 + a,
            cols: 1 + b,
        },
        5 => GeneratorSpec::Torus {
            rows: 3 + a,
            cols: 3 + b,
        },
        6 => GeneratorSpec::GridOfCliques {
            rows: 1 + a % 3,
            cols: 1 + b % 3,
            clique: 1 + (a + b) % 4,
        },
        _ => GeneratorSpec::RoadLike {
            rows: 1 + a,
            cols: 1 + b,
            seed,
        },
    }
}

fn arb_spec() -> impl Strategy<Value = GeneratorSpec> {
    (0usize..8, 0usize..6, 0usize..6, 0u64..1_000_000)
        .prop_map(|(f, a, b, s)| spec_from(f, a, b, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Graph → `.lcsg` → Graph is the identity — same CSR arrays, same
    /// edge ids, same weights — and re-encoding reproduces the identical
    /// bytes, across every generator family.
    #[test]
    fn lcsg_round_trip_is_bit_identical(
        spec in arb_spec(),
        weighted in 0u64..2,
        seed in 0u64..1_000_000,
    ) {
        let g = spec.build().expect("valid spec");
        let w = (weighted == 1)
            .then(|| EdgeWeights::random(&g, 1000, &mut SmallRng::seed_from_u64(seed)));
        let buf = encode(&g, w.as_ref());
        let loaded = io::read_graph(&mut &buf[..]).expect("own output must load");
        // Graph equality covers the full CSR (first_out/head/edge_id) and
        // the reconstructed endpoints; weights compare exactly.
        prop_assert_eq!(&loaded.graph, &g);
        prop_assert_eq!(&loaded.weights, &w);
        prop_assert_eq!(encode(&loaded.graph, loaded.weights.as_ref()), buf);
    }

    /// Any single bit flip in the section bytes is detected — the load
    /// fails with a typed error instead of producing a wrong graph.
    #[test]
    fn section_corruption_never_loads_silently(
        spec in arb_spec(),
        byte_seed in 0u64..1_000_000,
        bit in 0u8..8,
    ) {
        let g = spec.build().expect("valid spec");
        let mut buf = encode(&g, None);
        // Any graph has at least the two-entry first_out section.
        assert!(buf.len() > SECTIONS);
        let idx = SECTIONS + (byte_seed as usize) % (buf.len() - SECTIONS);
        buf[idx] ^= 1 << bit;
        let err = decode_err(&buf);
        prop_assert!(
            matches!(err, IoError::ChecksumMismatch { .. } | IoError::Inconsistent { .. }),
            "flip at {} gave {}", idx, err
        );
    }
}

#[test]
fn every_family_round_trips_through_a_file() {
    let dir = std::env::temp_dir();
    for (i, spec) in all_families().into_iter().enumerate() {
        let g = spec.build().expect("valid spec");
        let w = EdgeWeights::random(&g, 100, &mut SmallRng::seed_from_u64(i as u64));
        let path = dir.join(format!("lcs_ingest_rt_{}_{i}.lcsg", std::process::id()));
        io::save_graph(&path, &g, Some(&w)).expect("save");
        // Through the same GraphSource the session builder and server use.
        let resolved = GraphSource::FlatBinary {
            path: path.to_str().expect("utf-8").to_string(),
        }
        .resolve()
        .expect("load");
        assert_eq!(resolved.graph, g, "{}", spec.name());
        assert_eq!(resolved.weights, Some(w), "{}", spec.name());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn truncated_sections_name_the_section() {
    let g = gen::grid(3, 3);
    let w = EdgeWeights::unit(&g);
    let full = encode(&g, Some(&w));
    let n = g.num_nodes();
    let m = g.num_edges();
    // One cut inside each section (and inside the header).
    for (cut, section) in [
        (SECTIONS / 2, "header"),
        (SECTIONS + 2, "first_out"),
        (SECTIONS + 4 * (n + 1) + 2, "head"),
        (SECTIONS + 4 * (n + 1) + 8 * m + 2, "edge_id"),
        (SECTIONS + 4 * (n + 1) + 16 * m + 2, "weights"),
    ] {
        let err = decode_err(&full[..cut]);
        assert_eq!(err.code(), "graph_truncated", "cut at {cut}: {err}");
        match err {
            IoError::Truncated { section: s } => assert_eq!(s, section, "cut at {cut}"),
            other => panic!("cut at {cut}: expected Truncated, got {other}"),
        }
    }
}

#[test]
fn header_corruptions_are_typed() {
    let g = gen::cycle(5);
    let full = encode(&g, None);

    let mut bad_magic = full.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        decode_err(&bad_magic),
        IoError::BadMagic { found } if found == *b"XCSG"
    ));
    assert_eq!(decode_err(&bad_magic).code(), "graph_bad_magic");

    let mut bad_version = full.clone();
    bad_version[4..8].copy_from_slice(&2u32.to_le_bytes());
    assert!(matches!(
        decode_err(&bad_version),
        IoError::UnsupportedVersion { found: 2 }
    ));
    assert_eq!(decode_err(&bad_version).code(), "graph_unsupported_version");

    let mut bad_flags = full.clone();
    bad_flags[8] |= 0x04;
    assert!(matches!(
        decode_err(&bad_flags),
        IoError::UnknownFlags { .. }
    ));
    assert_eq!(decode_err(&bad_flags).code(), "graph_unknown_flags");

    // An absurd edge count trips the capacity gate before any allocation.
    let mut too_large = full.clone();
    too_large[24..32].copy_from_slice(&u64::from(u32::MAX).to_le_bytes());
    assert!(matches!(decode_err(&too_large), IoError::Capacity(_)));
    assert_eq!(decode_err(&too_large).code(), "graph_too_large");

    let mut bad_sum = full.clone();
    bad_sum[32] ^= 0xff;
    assert!(matches!(
        decode_err(&bad_sum),
        IoError::ChecksumMismatch { .. }
    ));
    assert_eq!(decode_err(&bad_sum).code(), "graph_checksum_mismatch");

    let mut trailing = full;
    trailing.push(0);
    assert!(matches!(decode_err(&trailing), IoError::TrailingBytes));
    assert_eq!(decode_err(&trailing).code(), "graph_trailing_bytes");
}

/// Structural lies that pass the checksum (the test re-seals the header)
/// are still rejected by the validation sweep.
#[test]
fn resealed_structural_corruption_is_inconsistent() {
    // path(3): first_out = [0, 1, 3, 4]. Zeroing entry 2 makes node 1's
    // slot range [1, 0) — non-monotone offsets.
    let g = gen::path(3);
    let mut buf = encode(&g, None);
    buf[SECTIONS + 8..SECTIONS + 12].copy_from_slice(&0u32.to_le_bytes());
    reseal(&mut buf);
    match decode_err(&buf) {
        IoError::Inconsistent { reason } => {
            assert!(reason.contains("monotone"), "{reason}")
        }
        other => panic!("expected Inconsistent, got {other}"),
    }

    // An out-of-range head id in the first slot.
    let mut buf = encode(&g, None);
    let head_at = SECTIONS + 4 * (g.num_nodes() + 1);
    buf[head_at..head_at + 4].copy_from_slice(&99u32.to_le_bytes());
    reseal(&mut buf);
    match decode_err(&buf) {
        IoError::Inconsistent { reason } => {
            assert!(reason.contains("out of range"), "{reason}")
        }
        other => panic!("expected Inconsistent, got {other}"),
    }
    assert_eq!(decode_err(&buf).code(), "graph_inconsistent");
}

/// The typed loader errors surface through [`GraphSource::FlatBinary`]
/// with their codes intact — what the server's 422 mapping relies on.
#[test]
fn graph_source_forwards_loader_codes() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("lcs_ingest_fwd_{}.lcsg", std::process::id()));
    let mut buf = encode(&gen::wheel(5), None);
    buf[32] ^= 0xff; // break the checksum
    std::fs::write(&path, &buf).expect("write corrupt file");
    let err = GraphSource::FlatBinary {
        path: path.to_str().expect("utf-8").to_string(),
    }
    .resolve()
    .expect_err("corrupt file must not resolve");
    assert_eq!(err.code(), "graph_checksum_mismatch");
    assert!(matches!(err, GraphSourceError::Flat { .. }));
    let _ = std::fs::remove_file(&path);
}
