//! Property tests binding the construction to the paper's Theorem 1.1
//! bounds on minor-free families.
//!
//! For `K_r`-minor-free graphs the paper guarantees shortcuts with
//! congestion `O(δD log n)` and dilation `O(δD)`. The construction tracks
//! the density guess `δ̂` of the doubling search (which is `O(δ)`), `D` is
//! the depth of the BFS tree the sweep ran on, and the `O(log n)` factor
//! is the number of successful Case (I) sweeps (each serves at least half
//! the still-active parts, Observation 2.7). The tests below draw random
//! planar (grid subdivisions) and bounded-genus (torus) instances plus
//! bounded-treewidth k-trees, and assert both bounds with explicit
//! constants, surfacing the **observed** constant in the failure message
//! so a regression immediately shows how far outside the envelope it
//! landed.

use low_congestion_shortcuts::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Simulator thread count for the distributed property tests. CI runs this
/// suite under both `LCS_SIM_THREADS=1` and `=4`; the bounds must hold —
/// and the executions be identical — either way.
fn env_threads() -> usize {
    std::env::var("LCS_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Simulator packing factor for the distributed property tests. CI runs
/// the suite under `LCS_SIM_PACKING=8` as well: multi-value packing must
/// leave every construction — and with it every bound below — unchanged.
fn env_packing() -> usize {
    std::env::var("LCS_SIM_PACKING")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Congestion must stay within `C_CONG · δ̂ · D · (log₂ n + 1)`.
///
/// The per-sweep threshold is `8δ̂D` and the doubling search executes at
/// most `log₂(#parts) + 1 ≤ log₂ n + 1` successful sweeps, so 8 is the
/// analytic constant; any excess indicates a broken threshold or sweep
/// accounting.
const C_CONG: f64 = 8.0;

/// Dilation must stay within `C_DIL · δ̂ · D`.
///
/// Observation 2.6 bounds each part's dilation by `blocks · (2D + 1)` with
/// `blocks ≤ 8δ̂ + 1`, i.e. `(8δ̂ + 1)(2D + 1) ≤ 27 · δ̂D` for `δ̂, D ≥ 1`.
const C_DIL: f64 = 27.0;

/// A random minor-free instance: planar / bounded-genus / bounded-treewidth
/// graph plus a random connected (Voronoi) partition.
fn arb_minor_free() -> impl Strategy<Value = (Graph, Vec<Vec<NodeId>>, &'static str)> {
    (0usize..3, 4usize..10, 4usize..10, 0u64..1000).prop_map(|(fam, a, b, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (g, name) = match fam {
            0 => (gen::grid(a, b), "planar/grid"),
            1 => (gen::torus(a, b), "genus-1/torus"),
            _ => (gen::ktree(a * b, 3, &mut rng), "treewidth-3/ktree"),
        };
        let k = 1 + (seed as usize % (g.num_nodes() / 3).max(1));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        (g, parts, name)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1.1: congestion `≤ c·δ̂D·log n` and dilation `≤ c·δ̂D` on
    /// minor-free families, with the observed constants surfaced.
    #[test]
    fn shortcut_bounds_on_minor_free_families((g, parts, family) in arb_minor_free()) {
        let n = g.num_nodes() as f64;
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let d = f64::from(tree.depth_of_tree().max(1));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let q = measure_quality(&g, &partition, &tree, &built.shortcut);
        prop_assert!(q.tree_restricted && q.all_connected());

        let delta_hat = f64::from(built.delta_hat.max(1));
        let log_n = n.log2() + 1.0;

        let c_cong = f64::from(q.max_congestion) / (delta_hat * d * log_n);
        prop_assert!(
            c_cong <= C_CONG,
            "{family}: congestion {} exceeds {C_CONG}·δ̂D·log n \
             (δ̂={delta_hat}, D={d}, log₂n+1={log_n:.2}): observed constant c={c_cong:.3}",
            q.max_congestion
        );

        let c_dil = f64::from(q.max_dilation_upper) / (delta_hat * d);
        prop_assert!(
            c_dil <= C_DIL,
            "{family}: dilation {} exceeds {C_DIL}·δ̂D (δ̂={delta_hat}, D={d}): \
             observed constant c={c_dil:.3}",
            q.max_dilation_upper
        );

        // Block count is the dilation driver: Definition 2.3's threshold.
        let c_blocks = f64::from(q.max_blocks) / delta_hat;
        prop_assert!(
            c_blocks <= 9.0,
            "{family}: {} blocks exceeds 9·δ̂ (δ̂={delta_hat}): observed constant c={c_blocks:.3}",
            q.max_blocks
        );
    }

    /// The Theorem 1.1 envelope holds when the partition itself comes from
    /// the nested-dissection engine (`PartitionSource::Separator`): the
    /// construction must absorb dissection-shaped parts — balanced blobs
    /// bounded by computed separators — as well as the synthetic ones.
    #[test]
    fn shortcut_bounds_with_separator_partitions(
        (g, _, family) in arb_minor_free(),
        level in 1u32..6,
    ) {
        use low_congestion_shortcuts::facade::PartitionSource;

        let n = g.num_nodes() as f64;
        let source = PartitionSource::Separator { level, min_region: 4 };
        let partition = Partition::from_parts(&g, source.resolve(&g)).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let d = f64::from(tree.depth_of_tree().max(1));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let q = measure_quality(&g, &partition, &tree, &built.shortcut);
        prop_assert!(q.tree_restricted && q.all_connected());

        let delta_hat = f64::from(built.delta_hat.max(1));
        let log_n = n.log2() + 1.0;
        let c_cong = f64::from(q.max_congestion) / (delta_hat * d * log_n);
        prop_assert!(
            c_cong <= C_CONG,
            "{family} (separator level {level}): observed congestion constant \
             c={c_cong:.3} > {C_CONG}"
        );
        let c_dil = f64::from(q.max_dilation_upper) / (delta_hat * d);
        prop_assert!(
            c_dil <= C_DIL,
            "{family} (separator level {level}): observed dilation constant \
             c={c_dil:.3} > {C_DIL}"
        );
        let c_blocks = f64::from(q.max_blocks) / delta_hat;
        prop_assert!(
            c_blocks <= 9.0,
            "{family} (separator level {level}): observed block constant \
             c={c_blocks:.3} > 9"
        );
    }

    /// The same bounds hold for the distributed Theorem 1.5 construction in
    /// exact mode (it reproduces the centralized cut set, so this pins the
    /// full simulated pipeline to the paper's envelope).
    #[test]
    fn distributed_bounds_on_minor_free_families(
        (g, parts, family) in arb_minor_free(),
    ) {
        use low_congestion_shortcuts::congest::SimConfig;
        use low_congestion_shortcuts::core::dist::{distributed_full_shortcut, DistConfig};

        let partition = Partition::from_parts(&g, parts).unwrap();
        let dist = DistConfig {
            sim: SimConfig {
                threads: env_threads(),
                message_packing: env_packing(),
                ..SimConfig::default()
            },
            ..DistConfig::default()
        };
        let res = distributed_full_shortcut(
            &g,
            NodeId(0),
            &partition,
            &ShortcutConfig::default(),
            &dist,
        );
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let d = f64::from(tree.depth_of_tree().max(1));
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        prop_assert!(q.tree_restricted && q.all_connected());

        let delta_hat = f64::from(res.delta_hat.max(1));
        let log_n = (g.num_nodes() as f64).log2() + 1.0;
        let c_cong = f64::from(q.max_congestion) / (delta_hat * d * log_n);
        let c_dil = f64::from(q.max_dilation_upper) / (delta_hat * d);
        prop_assert!(
            c_cong <= C_CONG,
            "{family} (distributed): observed congestion constant c={c_cong:.3} > {C_CONG}"
        );
        prop_assert!(
            c_dil <= C_DIL,
            "{family} (distributed): observed dilation constant c={c_dil:.3} > {C_DIL}"
        );
    }
}
