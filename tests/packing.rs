//! Packing-invariance properties of the multi-value message engine.
//!
//! [`SimConfig::message_packing`] is a pure scheduling/wire optimization:
//! it may coalesce, it must never change what a protocol computes. This
//! suite pins the contract across **both** delivery backends (strict and
//! queued) and thread counts {1, 4}:
//!
//! * **Result identity** — BFS trees, detection cut sets, assembled
//!   shortcuts, and part-wise aggregates are bit-identical at every
//!   packing level.
//! * **Monotone cost** — rounds, messages, and bits never increase as
//!   `message_packing` grows (batches only merge, and the packed width
//!   never exceeds the sum of the parts).
//! * **Exact bits accounting** — every envelope fits the per-edge-round
//!   bandwidth budget `B`: a receiver never gets more payload bits over
//!   one edge in one round than `B` allows.
//!
//! [`SimConfig::message_packing`]: low_congestion_shortcuts::congest::SimConfig::message_packing

use low_congestion_shortcuts::congest::protocols::{AggOp, BfsTreeProgram};
use low_congestion_shortcuts::congest::{
    Ctx, Incoming, NodeProgram, SimConfig, SimMode, Simulator,
};
use low_congestion_shortcuts::core::dist::{
    distributed_partial_shortcut, DistConfig, DistMode, DistPartialShortcut,
};
use low_congestion_shortcuts::core::{Partition, ShortcutConfig, WitnessMode};
use low_congestion_shortcuts::partwise::{solve_partwise, PartwiseConfig};
use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PACKING_LEVELS: [usize; 4] = [1, 2, 4, 8];
const THREADS: [usize; 2] = [1, 4];

fn sim(mode: SimMode, threads: usize, packing: usize) -> SimConfig {
    SimConfig {
        mode,
        threads,
        message_packing: packing,
        ..SimConfig::default()
    }
}

/// Asserts the three monotone cost counters never increase from `base`
/// (the previous, smaller packing level) to `next`.
fn assert_monotone(label: &str, base: (u64, u64, u64), next: (u64, u64, u64)) {
    assert!(
        next.0 <= base.0 && next.1 <= base.1 && next.2 <= base.2,
        "{label}: (rounds, messages, bits) grew from {base:?} to {next:?} — \
         packing must only coalesce"
    );
}

/// BFS on both backends: identical trees, non-increasing cost, at every
/// packing level and thread count.
#[test]
fn bfs_results_are_packing_invariant() {
    let mut rng = SmallRng::seed_from_u64(7);
    let graphs = [
        ("grid", gen::grid(9, 11)),
        ("torus", gen::torus(8, 8)),
        ("gnm", gen::gnm_connected(150, 300, &mut rng)),
    ];
    for (family, g) in &graphs {
        for mode in [SimMode::Strict, SimMode::Queued] {
            for threads in THREADS {
                let mut reference: Option<Vec<Option<u32>>> = None;
                let mut prev_cost: Option<(u64, u64, u64)> = None;
                for packing in PACKING_LEVELS {
                    let run = Simulator::new(g, sim(mode, threads, packing))
                        .run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
                    assert!(run.metrics.terminated);
                    let dists: Vec<Option<u32>> =
                        run.programs.iter().map(BfsTreeProgram::dist).collect();
                    let cost = (run.metrics.rounds, run.metrics.messages, run.metrics.bits);
                    let label = format!("{family}/{mode:?}/t{threads}/p{packing}");
                    match &reference {
                        None => reference = Some(dists),
                        Some(ref_dists) => {
                            assert_eq!(&dists, ref_dists, "{label}: BFS distances drifted");
                        }
                    }
                    if let Some(prev) = prev_cost {
                        assert_monotone(&label, prev, cost);
                    }
                    prev_cost = Some(cost);
                }
            }
        }
    }
}

fn run_detection(
    g: &Graph,
    partition: &Partition,
    mode: DistMode,
    threads: usize,
    packing: usize,
) -> DistPartialShortcut {
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let dist = DistConfig {
        mode,
        sim: SimConfig {
            threads,
            message_packing: packing,
            ..SimConfig::default()
        },
    };
    distributed_partial_shortcut(g, NodeId(0), partition, 1, &cfg, &dist)
}

/// The two hot convergecast producers — exact part streams and KMV sketch
/// streams — must detect the identical cut set at every packing level,
/// with strictly monotone cost and a genuine round cut at packing 8.
#[test]
fn detection_cut_sets_are_packing_invariant() {
    let g = gen::grid(12, 12);
    let partition = Partition::from_parts(&g, gen::singleton_parts(&g)).unwrap();
    let modes = [
        ("exact", DistMode::Exact),
        (
            "sketch",
            DistMode::Sketch {
                t: 8,
                hash_seed: 0xbeef,
                cut_factor: 1.0,
            },
        ),
    ];
    for (mode_name, mode) in modes {
        for threads in THREADS {
            let mut reference: Option<DistPartialShortcut> = None;
            let mut prev: Option<(u64, u64, u64)> = None;
            let mut unpacked_rounds = 0;
            let mut packed8_rounds = 0;
            for packing in PACKING_LEVELS {
                let res = run_detection(&g, &partition, mode, threads, packing);
                let label = format!("{mode_name}/t{threads}/p{packing}");
                let m = &res.metrics_shortcut;
                let cost = (m.rounds, m.messages, m.bits);
                if packing == 1 {
                    unpacked_rounds = m.rounds;
                }
                if packing == 8 {
                    packed8_rounds = m.rounds;
                }
                match &reference {
                    None => reference = Some(res),
                    Some(base) => {
                        assert_eq!(res.over_edges, base.over_edges, "{label}: cut set drifted");
                        assert_eq!(res.shortcut, base.shortcut, "{label}: shortcut drifted");
                        assert_eq!(res.served, base.served, "{label}: served parts drifted");
                    }
                }
                if let Some(p) = prev {
                    assert_monotone(&label, p, cost);
                }
                prev = Some(cost);
            }
            // Streams are multi-message per edge here, so packing must
            // genuinely compress the detection phase, not just tie.
            assert!(
                packed8_rounds < unpacked_rounds,
                "{mode_name}/t{threads}: packing 8 left detection rounds at \
                 {packed8_rounds} (unpacked {unpacked_rounds})"
            );
        }
    }
}

/// Part-wise aggregation (the queued, multi-instance, random-delay
/// workload) returns identical aggregates at every packing level.
#[test]
fn partwise_aggregates_are_packing_invariant() {
    let g = gen::grid(8, 8);
    let partition = Partition::from_parts(&g, gen::rows_of_grid(8, 8)).unwrap();
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
    let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| (x * 37) % 101).collect();
    for threads in THREADS {
        for delay_range in [0, 8] {
            let mut reference: Option<Vec<Option<u64>>> = None;
            for packing in PACKING_LEVELS {
                let out = solve_partwise(
                    &g,
                    &partition,
                    &built.shortcut,
                    &values,
                    AggOp::Sum,
                    None,
                    &PartwiseConfig {
                        delay_range,
                        sim: SimConfig {
                            threads,
                            message_packing: packing,
                            ..SimConfig::default()
                        },
                        ..PartwiseConfig::default()
                    },
                );
                assert!(out.all_members_informed, "t{threads}/p{packing}");
                match &reference {
                    None => reference = Some(out.results),
                    Some(r) => assert_eq!(
                        &out.results, r,
                        "t{threads}/d{delay_range}/p{packing}: aggregate drifted"
                    ),
                }
            }
        }
    }
}

/// Exact bits accounting: a receiver never observes more than
/// `floor(B / value_bits)` values over one edge in one round — the packed
/// envelope respects the bandwidth budget `B` exactly, regardless of how
/// large `message_packing` is set.
#[test]
fn per_edge_round_delivery_respects_the_bit_budget() {
    const VALUE_BITS: usize = 32; // u32 payloads
    const BUDGET: usize = 100; // fits 3 values, not 4
    struct Sender;
    struct Recorder(Vec<usize>);
    enum P {
        S(Sender),
        R(Recorder),
    }
    impl NodeProgram for P {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if let P::S(_) = self {
                for k in 0..20u32 {
                    ctx.send(0, k);
                }
            }
        }
        fn on_round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            if let P::R(r) = self {
                r.0.push(inbox.len());
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    let g = gen::path(2);
    let cap = BUDGET / VALUE_BITS;
    for packing in [2, 8, 64] {
        let run = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                bandwidth_bits: Some(BUDGET),
                message_packing: packing,
                ..SimConfig::default()
            },
        )
        .run(|v, _| {
            if v == NodeId(0) {
                P::S(Sender)
            } else {
                P::R(Recorder(Vec::new()))
            }
        });
        assert!(run.metrics.terminated);
        let P::R(r) = &run.programs[1] else {
            panic!("node 1 records");
        };
        let max_per_round = r.0.iter().copied().max().unwrap_or(0);
        assert!(
            max_per_round <= cap.min(packing),
            "packing {packing}: {max_per_round} values crossed one edge in one round \
             (budget {BUDGET} bits allows {cap})"
        );
        assert_eq!(r.0.iter().sum::<usize>(), 20, "no value lost or duplicated");
        // Every billed envelope fits the budget: total bits never exceed
        // messages × budget (the engine asserts per-envelope internally).
        assert!(run.metrics.bits <= run.metrics.messages * BUDGET as u64);
    }
}

/// `messages` counts envelopes: the wire-level message count a packed run
/// reports matches `ceil(stream / per-envelope capacity)` on a clean
/// single-stream instance.
#[test]
fn envelope_counting_matches_the_packed_schedule() {
    struct Sender;
    impl NodeProgram for Sender {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.node() == NodeId(0) {
                for k in 0..10u32 {
                    ctx.send(0, k);
                }
            }
        }
        fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
        fn is_done(&self) -> bool {
            true
        }
    }
    let g = gen::path(2);
    for (packing, expect_messages) in [(1usize, 10u64), (2, 5), (4, 3), (8, 2), (16, 1)] {
        let run = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                // Roomy budget: the packing factor is the only limit.
                bandwidth_bits: Some(1 << 12),
                message_packing: packing,
                ..SimConfig::default()
            },
        )
        .run(|_, _| Sender);
        assert_eq!(
            run.metrics.messages, expect_messages,
            "packing {packing}: envelope count"
        );
        assert_eq!(
            run.metrics.rounds, expect_messages,
            "queued mode drains one envelope per round"
        );
        assert_eq!(run.metrics.bits, 10 * 32, "u32 payload bits are invariant");
    }
}

/// The pack-aware `MessageSize::size_bits_packed_in` of the detection
/// stream shares the variant tag across a run: packed sketch detection
/// must bill strictly fewer bits than unpacked (tag amortization), while
/// exact payload content stays the same.
#[test]
fn sketch_stream_compression_reduces_billed_bits() {
    let g = gen::grid(10, 10);
    let partition = Partition::from_parts(&g, gen::singleton_parts(&g)).unwrap();
    let mode = DistMode::Sketch {
        t: 8,
        hash_seed: 0xbeef,
        cut_factor: 1.0,
    };
    let unpacked = run_detection(&g, &partition, mode, 1, 1);
    let packed = run_detection(&g, &partition, mode, 1, 8);
    assert!(
        packed.metrics_shortcut.bits < unpacked.metrics_shortcut.bits,
        "shared-tag batches must bill fewer bits ({} vs {})",
        packed.metrics_shortcut.bits,
        unpacked.metrics_shortcut.bits
    );
    assert_eq!(packed.over_edges, unpacked.over_edges);
}
