//! Serde round-trips: the data structures experiments persist must survive
//! serialization unchanged.

use low_congestion_shortcuts::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn graph_roundtrip_preserves_structure() {
    let g = gen::torus(4, 5);
    let back: Graph = roundtrip(&g);
    assert_eq!(back, g);
    assert_eq!(back.num_nodes(), 20);
    assert_eq!(back.heads(NodeId(7)), g.heads(NodeId(7)));
    assert_eq!(back.edge_ids(NodeId(7)), g.edge_ids(NodeId(7)));
}

#[test]
fn partition_and_shortcut_roundtrip() {
    let g = gen::grid(6, 6);
    let partition = Partition::from_parts(&g, gen::rows_of_grid(6, 6)).unwrap();
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());

    let p2: Partition = roundtrip(&partition);
    assert_eq!(p2, partition);
    let s2: Shortcut = roundtrip(&built.shortcut);
    assert_eq!(s2, built.shortcut);
    // Quality is identical after the round trip.
    let q1 = measure_quality(&g, &partition, &tree, &built.shortcut);
    let q2 = measure_quality(&g, &p2, &tree, &s2);
    assert_eq!(q1, q2);
}

#[test]
fn quality_report_and_witness_roundtrip() {
    let comb = gen::comb(10, 24);
    let partition = Partition::from_parts(&comb.graph, comb.parts.clone()).unwrap();
    let tree = bfs::bfs_tree(&comb.graph, NodeId(0));
    let built = full_shortcut(&comb.graph, &tree, &partition, &ShortcutConfig::default());
    let q = measure_quality(&comb.graph, &partition, &tree, &built.shortcut);
    let q2: low_congestion_shortcuts::core::QualityReport = roundtrip(&q);
    assert_eq!(q2, q);

    let w = built.best_witness.expect("comb yields a witness");
    let w2: minor::MinorWitness = roundtrip(&w);
    assert_eq!(w2, w);
    assert!(minor::verify_minor(&comb.graph, &w2).is_ok());
}

#[test]
fn rooted_tree_roundtrip() {
    let g = gen::grid(5, 5);
    let tree = bfs::bfs_tree(&g, NodeId(12));
    let t2: RootedTree = roundtrip(&tree);
    assert_eq!(t2.root(), tree.root());
    assert_eq!(t2.depth_of_tree(), tree.depth_of_tree());
    for v in g.nodes() {
        assert_eq!(t2.parent(v), tree.parent(v));
        assert_eq!(t2.depth(v), tree.depth(v));
    }
}

#[test]
fn weights_and_metrics_roundtrip() {
    let g = gen::cycle(8);
    let mut rng = SmallRng::seed_from_u64(5);
    let w = lcs_graph::weights::EdgeWeights::random(&g, 100, &mut rng);
    let w2: lcs_graph::weights::EdgeWeights = roundtrip(&w);
    assert_eq!(w2, w);

    let metrics = lcs_congest::RunMetrics {
        rounds: 10,
        messages: 42,
        bits: 1000,
        max_queue: 3,
        terminated: true,
        truncated: false,
        threads: 4,
        bandwidth_bits: 160,
        packing: 8,
    };
    let m2: lcs_congest::RunMetrics = roundtrip(&metrics);
    assert_eq!(m2, metrics);
}

use lcs_graph::RootedTree;
use low_congestion_shortcuts::core::Shortcut;
