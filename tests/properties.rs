//! Property-based tests (proptest) on the core invariants.

use lcs_graph::weights::EdgeWeights;
use low_congestion_shortcuts::algos::mst::{distributed_mst, kruskal, BoruvkaConfig};
use low_congestion_shortcuts::congest::protocols::AggOp;
use low_congestion_shortcuts::core::dist::KmvSketch;
use low_congestion_shortcuts::partwise::{centralized_aggregate, solve_partwise, PartwiseConfig};
use low_congestion_shortcuts::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A random connected graph + Voronoi partition, fully determined by the
/// strategy parameters (sizes kept small for test speed).
fn arb_instance() -> impl Strategy<Value = (Graph, Vec<Vec<NodeId>>)> {
    (6usize..40, 0u64..1000).prop_map(|(n, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let extra = (n * (n - 1) / 2).saturating_sub(n - 1);
        let m = n - 1 + (seed as usize % (extra.min(2 * n) + 1));
        let g = gen::gnm_connected(n, m, &mut rng);
        let k = 1 + (seed as usize % (n / 2).max(1));
        let parts = gen::random_connected_parts(&g, k, &mut rng);
        (g, parts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1.2 invariants hold on arbitrary connected graphs.
    #[test]
    fn full_shortcut_invariants((g, parts) in arb_instance()) {
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let d = tree.depth_of_tree();
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let q = measure_quality(&g, &partition, &tree, &built.shortcut);
        prop_assert!(q.tree_restricted);
        prop_assert!(q.all_connected());
        prop_assert!(q.max_blocks <= 8 * built.delta_hat + 1);
        prop_assert!(
            q.max_congestion
                <= 8 * built.delta_hat * d.max(1) * built.successful_rounds.max(1) as u32
        );
        prop_assert!(q.max_dilation_upper <= (8 * built.delta_hat + 1) * (2 * d + 1));
        // Observation 2.6 per part: dilation <= blocks·(2D+1).
        for pq in &q.per_part {
            prop_assert!(u64::from(pq.dilation_upper)
                <= u64::from(pq.blocks) * u64::from(2 * d + 1));
        }
        // Any witness from the doubling search certifies real density.
        if let Some(w) = &built.best_witness {
            prop_assert!(minor::verify_minor(&g, w).is_ok());
        }
    }

    /// Distributed aggregation equals the centralized reference.
    #[test]
    fn aggregation_matches_reference((g, parts) in arb_instance(), op_idx in 0usize..3) {
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let op = [AggOp::Min, AggOp::Max, AggOp::Sum][op_idx];
        let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| x.wrapping_mul(2654435761) % 10_000).collect();
        let out = solve_partwise(
            &g, &partition, &built.shortcut, &values, op, None, &PartwiseConfig::default(),
        );
        prop_assert!(out.all_members_informed);
        let expect = centralized_aggregate(&partition, &values, op);
        for (i, r) in out.results.iter().enumerate() {
            prop_assert_eq!(r.unwrap(), expect[i]);
        }
    }

    /// Boruvka with oracle shortcuts equals Kruskal on any connected graph.
    #[test]
    fn mst_matches_kruskal((g, _) in arb_instance(), wseed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(wseed);
        let w = EdgeWeights::random_unique(&g, &mut rng);
        let reference = kruskal(&g, &w);
        let rep = distributed_mst(&g, &w, NodeId(0), &BoruvkaConfig::default());
        prop_assert_eq!(rep.edges, reference);
    }

    /// The greedy minor-density witness always verifies and never exceeds
    /// the exact value on tiny graphs.
    #[test]
    fn greedy_density_is_sound(n in 4usize..9, seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let maxm = n * (n - 1) / 2;
        let m = (n - 1) + (seed as usize % (maxm - (n - 1) + 1));
        let g = gen::gnm_connected(n, m, &mut rng);
        let est = minor::greedy_contraction_density(&g, None);
        prop_assert!(minor::verify_minor(&g, &est.witness).is_ok());
        let exact = minor::exact_minor_density_small(&g);
        prop_assert!(est.density <= exact + 1e-9);
        prop_assert!(g.density() <= exact + 1e-9);
    }

    /// KMV sketches: exact below capacity, merge = union semantics.
    #[test]
    fn kmv_sketch_properties(vals in prop::collection::vec(0u32..5000, 0..200), t in 1usize..64) {
        let mut whole = KmvSketch::new(t);
        let mut distinct = std::collections::HashSet::new();
        for &v in &vals {
            whole.insert(hash(v));
            distinct.insert(hash(v));
        }
        if distinct.len() < t {
            prop_assert_eq!(whole.estimate() as usize, distinct.len());
        }
        // Splitting the stream and merging gives the same sketch.
        let (a_half, b_half) = vals.split_at(vals.len() / 2);
        let mut a = KmvSketch::new(t);
        for &v in a_half {
            a.insert(hash(v));
        }
        let mut b = KmvSketch::new(t);
        for &v in b_half {
            b.insert(hash(v));
        }
        a.merge(&b);
        prop_assert_eq!(a.values(), whole.values());
    }

    /// The Lemma 3.2 generator always meets its structural contract.
    #[test]
    fn lower_bound_topology_contract(dp in 5u32..8, extra in 0u32..30) {
        let dd = 3 * dp - 4 + extra;
        let lb = gen::lower_bound_topology(dp, dd);
        // Diameter within D′ (double-sweep upper bound suffices here).
        let b = diameter::diameter_bounds(&lb.graph, lb.top_path[0]);
        prop_assert!(b.lower <= lb.d_prime);
        // Edge density below δ′ (necessary for minor density < δ′).
        prop_assert!(lb.graph.density() < f64::from(lb.delta_prime));
        // Rows are disjoint connected parts.
        let partition = Partition::from_parts(&lb.graph, lb.rows.clone());
        prop_assert!(partition.is_ok());
    }
}

fn hash(v: u32) -> u64 {
    let mut z = u64::from(v).wrapping_mul(0x9e3779b97f4a7c15);
    z ^= z >> 31;
    z
}
