//! Fast tier-1 guard: the core pipeline (generator → partition → full
//! shortcut → quality measurement) on a small grid, independent of the
//! heavier paper-claims suites. If this test fails, everything downstream
//! is broken.

use low_congestion_shortcuts::prelude::*;

#[test]
fn grid_pipeline_produces_finite_quality() {
    let g = gen::grid(8, 8);
    assert_eq!(g.num_nodes(), 64);
    let parts = gen::rows_of_grid(8, 8);
    let partition = Partition::from_parts(&g, parts).expect("grid rows are valid parts");
    let tree = bfs::bfs_tree(&g, NodeId(0));
    assert_eq!(tree.depth_of_tree(), 14); // corner-rooted 8x8 grid

    let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
    let q = measure_quality(&g, &partition, &tree, &built.shortcut);

    // Finite, structurally sane quality numbers.
    assert!(q.all_connected());
    assert!(q.tree_restricted);
    assert!(q.max_congestion >= 1, "rows must share some tree edge");
    assert!(q.max_congestion < u32::MAX);
    assert!(q.max_dilation_upper < u32::MAX, "dilation must be finite");
    assert!(q.max_blocks >= 1);
    assert!(q.quality() < u32::MAX);

    // And within the Theorem 1.2 bounds for the achieved δ̂.
    let d = tree.depth_of_tree();
    assert!(q.max_blocks <= 8 * built.delta_hat + 1);
    assert!(q.max_dilation_upper <= (8 * built.delta_hat + 1) * (2 * d + 1));
}
